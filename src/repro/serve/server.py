"""The asyncio HTTP/JSON + SSE front end of the job service.

``repro serve`` runs one :class:`JobServer`: a stdlib
``asyncio.start_server`` loop that parses just enough HTTP/1.1 to speak
JSON and Server-Sent Events, and translates every request into a call
on a :class:`repro.api.Session` — the server adds a wire codec on top
of the facade, never semantics.  No third-party framework.

Endpoints (full contract in docs/SERVICE.md):

========  =======================  ==========================================
method    path                     action
========  =======================  ==========================================
GET       /v1/health               service stats (queue census, shards, ...)
POST      /v1/jobs                 submit a ``job-request`` record
GET       /v1/jobs                 list job records (``?tenant=`` filter)
GET       /v1/jobs/{id}            one ``job-record``
DELETE    /v1/jobs/{id}            cancel (idempotent; 409 if terminal)
GET       /v1/jobs/{id}/events     SSE stream: ``state`` + ``heartbeat``
POST      /v1/drain                begin graceful drain (also on SIGTERM)
========  =======================  ==========================================

Admission failures map onto HTTP status codes: a full queue answers
``429`` with a ``Retry-After`` header, a tenant over quota ``429``
without one, and a draining server ``503``.  SIGTERM triggers the same
drain as ``POST /v1/drain``: stop admitting, let admitted jobs finish,
then exit — the CI smoke test kills a server mid-job and asserts the
job still completes.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import api
from repro.common.errors import ConfigError
from repro.common.serialize import decode_record, encode_record
from repro.serve.jobs import (DrainingError, QueueFullError, QuotaError,
                              UnknownJobError)
from repro.serve.protocol import job_request_from_dict

#: Largest request body the server will read (a job-request is ~1 KiB;
#: anything bigger is a client bug, not a workload).
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class _HttpError(Exception):
    """Carries a ready-to-send error response up to the handler loop."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


class JobServer:
    """One service instance bound to ``host:port``."""

    def __init__(self, session: Optional["api.Session"] = None, *,
                 host: str = "127.0.0.1", port: int = 8321) -> None:
        self.session = session if session is not None else api.Session()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        # Rebind to the kernel-assigned port when asked for port 0.
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or a handled signal) fires."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown_sequence()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.shutdown)

    def shutdown(self) -> None:
        """Begin the graceful drain (idempotent, signal-safe)."""
        self.session.table.drain()
        self._stopping.set()

    async def _shutdown_sequence(self) -> None:
        # Stop accepting new connections, then wait (off-loop) for the
        # already-admitted jobs to reach terminal states.  SSE watchers
        # of those jobs get their final `state` event before we close.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.session.drain(None))

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except _HttpError as exc:
            await self._send_json(
                writer, exc.status,
                {"error": {"type": "HttpError", "message": exc.message}},
                extra_headers=exc.headers)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                await self._send_json(
                    writer, 500,
                    {"error": {"type": type(exc).__name__,
                               "message": str(exc)}})
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(content_length) \
            if content_length else b""
        return method.upper(), path, body

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        url = urlsplit(target)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        if parts[:1] != ["v1"]:
            raise _HttpError(404, f"no such path {url.path!r}")
        rest = parts[1:]
        if rest == ["health"] and method == "GET":
            await self._send_json(writer, 200, self.session.stats())
        elif rest == ["jobs"] and method == "POST":
            await self._submit(body, writer)
        elif rest == ["jobs"] and method == "GET":
            tenant = query.get("tenant", [None])[0]
            records = [encode_record("job-record", record)
                       for record in self.session.jobs(tenant)]
            await self._send_json(writer, 200, {"jobs": records})
        elif len(rest) == 2 and rest[0] == "jobs":
            await self._job_verb(method, rest[1], writer)
        elif len(rest) == 3 and rest[:1] == ["jobs"] \
                and rest[2] == "events" and method == "GET":
            await self._stream_events(rest[1], writer)
        elif rest == ["drain"] and method == "POST":
            self.shutdown()
            await self._send_json(writer, 202, {"draining": True})
        else:
            raise _HttpError(404, f"no route for {method} {url.path}")

    # -- handlers ----------------------------------------------------------

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        try:
            if isinstance(data, dict) and data.get("kind") == "job-request":
                job_request = decode_record(data, "job-request")
            else:
                job_request = job_request_from_dict(data)
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        try:
            job = self.session.submit(
                job_request.request, tenant=job_request.tenant,
                priority=job_request.priority,
                timeout_s=job_request.timeout_s)
        except QueueFullError as exc:
            raise _HttpError(
                429, str(exc),
                {"Retry-After": f"{max(1, round(exc.retry_after_s))}"})
        except QuotaError as exc:
            raise _HttpError(429, str(exc))
        except DrainingError as exc:
            raise _HttpError(503, str(exc))
        record = job.record()
        status = 200 if record.cached else 202
        await self._send_json(writer, status,
                              encode_record("job-record", record))

    async def _job_verb(self, method: str, job_id: str,
                        writer: asyncio.StreamWriter) -> None:
        try:
            if method == "GET":
                record = self.session.status(job_id)
                await self._send_json(writer, 200,
                                      encode_record("job-record", record))
            elif method == "DELETE":
                cancelled = self.session.cancel(job_id)
                record = self.session.status(job_id)
                await self._send_json(
                    writer, 200 if cancelled else 409,
                    encode_record("job-record", record))
            else:
                raise _HttpError(405, f"{method} not allowed on a job")
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc))

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter) -> None:
        """SSE: forward a job's state/heartbeat feed until terminal.

        The job's subscriber callbacks run on service threads; they
        bridge into this coroutine through an asyncio queue via
        ``call_soon_threadsafe``.  A job that is already terminal
        replays its final state immediately (Job.subscribe contract),
        so watchers of finished jobs never hang.
        """
        try:
            job = self.session.table.get(job_id)
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc))
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Tuple[str, Dict]]" = asyncio.Queue()

        def forward(event: str, payload: Dict) -> None:
            loop.call_soon_threadsafe(events.put_nowait, (event, payload))

        unsubscribe = job.subscribe(forward)
        try:
            writer.write(self._head(
                200, {"Content-Type": "text/event-stream",
                      "Cache-Control": "no-cache"}))
            await writer.drain()
            while True:
                event, payload = await events.get()
                chunk = (f"event: {event}\n"
                         f"data: {json.dumps(payload, sort_keys=True)}\n\n")
                writer.write(chunk.encode("utf-8"))
                await writer.drain()
                if event == "state" \
                        and payload.get("state") in ("done", "failed",
                                                     "cancelled"):
                    return
        finally:
            unsubscribe()

    # -- response plumbing -------------------------------------------------

    def _head(self, status: int, headers: Dict[str, str]) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        lines += ["Connection: close", "", ""]
        return "\r\n".join(lines).encode("latin-1")

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict,
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = {"Content-Type": "application/json",
                   "Content-Length": str(len(body))}
        headers.update(extra_headers or {})
        writer.write(self._head(status, headers) + body)
        await writer.drain()


async def serve(session: Optional["api.Session"] = None, *,
                host: str = "127.0.0.1", port: int = 8321,
                signals: bool = True,
                ready: Optional[Tuple] = None) -> None:
    """Run a job server until drained (the ``repro serve`` entry point).

    ``ready``, when given, is a ``(callback,)`` tuple invoked with the
    bound port once the socket is listening — the smoke test and the
    CLI use it to print the actual port when asked for port 0.
    """
    server = JobServer(session, host=host, port=port)
    await server.start()
    if signals:
        server.install_signal_handlers()
    if ready is not None:
        ready[0](server.port)
    await server.serve_forever()


def main(session: Optional["api.Session"] = None, *, host: str = "127.0.0.1",
         port: int = 8321,
         on_ready=None) -> int:
    """Blocking wrapper around :func:`serve` for the CLI."""
    ready = (on_ready,) if on_ready is not None else None
    try:
        asyncio.run(serve(session, host=host, port=port, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0
