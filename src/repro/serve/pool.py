"""Sharded process pool for job execution.

The pool owns ``shards`` execution slots.  Each dispatched job gets a
fresh worker process (the same rebuild-from-recipe fan-out the
experiment engine uses, plus a heartbeat pipe) and a monitor thread that
relays pipe messages to the session, enforces the per-job wall-clock
timeout, and reports the process's fate when it exits.  Fresh processes
keep cancellation honest — terminating a worker can never corrupt a
sibling job's state — and make per-job timeouts a plain ``terminate()``.

Dispatch *blocks* while all shards are busy; the caller (the session's
dispatcher thread) therefore self-throttles, and admission back-pressure
stays where it belongs, in the bounded :class:`~repro.serve.jobs.JobTable`.

Outcomes delivered to ``on_exit`` (exactly one per dispatch):

* ``("ok", run_result_dict)`` / ``("error", spec_error_dict)`` — the
  worker's own terminal report;
* ``("timeout", seconds)`` — the wall-clock budget lapsed, worker killed;
* ``("cancelled", detail)`` — :meth:`WorkerPool.cancel` killed it;
* ``("crashed", exitcode)`` — the process died without reporting.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.serve.worker import HEARTBEAT_CYCLES, job_worker_main

#: Seconds between monitor wake-ups (pipe poll granularity).
_POLL_S = 0.05


class _Running:
    """Book-keeping for one in-flight worker."""

    __slots__ = ("process", "conn", "deadline", "timeout_s", "cancelled",
                 "detail")

    def __init__(self, process, conn, deadline: Optional[float],
                 timeout_s: Optional[float]) -> None:
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.timeout_s = timeout_s
        self.cancelled = False
        self.detail = ""


class WorkerPool:
    """Up to ``shards`` concurrently running job workers."""

    def __init__(self, shards: int = 2,
                 default_timeout_s: Optional[float] = 300.0,
                 heartbeat_cycles: int = HEARTBEAT_CYCLES) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.default_timeout_s = default_timeout_s
        self.heartbeat_cycles = heartbeat_cycles
        self._slots = threading.BoundedSemaphore(shards)
        self._lock = threading.Lock()
        self._running: Dict[str, _Running] = {}
        #: Total processes ever spawned (tests assert the cache-hit fast
        #: path leaves this untouched).
        self.dispatched = 0

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, job_id: str, request_data: Dict,
                 on_message: Callable[[str, Dict], None],
                 on_exit: Callable[[Tuple], None],
                 timeout_s: Optional[float] = None,
                 on_start: Optional[Callable[[], bool]] = None) -> bool:
        """Run one job; blocks until a shard slot is free.

        ``on_start`` (if given) runs once a slot is held, *before* the
        process spawns; returning False abandons the dispatch (the job
        was cancelled while waiting) and releases the slot — no process,
        no ``on_exit``.  ``on_message`` receives each ``("heartbeat",
        sample)`` as it arrives; ``on_exit`` receives exactly one
        outcome tuple after the worker process has been reaped.  Both
        run on the job's monitor thread.  Returns True when a worker
        was actually spawned.
        """
        self._slots.acquire()
        try:
            if on_start is not None and not on_start():
                self._slots.release()
                return False
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=job_worker_main,
                args=(child_conn, request_data, self.heartbeat_cycles),
                name=f"repro-job-{job_id}", daemon=True)
            process.start()
            child_conn.close()  # the worker holds the only write end now
            if timeout_s is None:
                timeout_s = self.default_timeout_s
            deadline = None if timeout_s is None \
                else time.time() + timeout_s
            entry = _Running(process, parent_conn, deadline, timeout_s)
            with self._lock:
                self._running[job_id] = entry
            self.dispatched += 1
        except BaseException:
            self._slots.release()
            raise
        monitor = threading.Thread(
            target=self._monitor, args=(job_id, entry, on_message, on_exit),
            name=f"repro-monitor-{job_id}", daemon=True)
        monitor.start()
        return True

    def _monitor(self, job_id: str, entry: _Running,
                 on_message: Callable[[str, Dict], None],
                 on_exit: Callable[[Tuple], None]) -> None:
        terminal: Optional[Tuple] = None
        timed_out = False
        try:
            while True:
                if entry.deadline is not None \
                        and time.time() > entry.deadline \
                        and terminal is None:
                    timed_out = True
                    entry.process.terminate()
                    break
                try:
                    if entry.conn.poll(_POLL_S):
                        kind, payload = entry.conn.recv()
                        if kind in ("ok", "error"):
                            terminal = (kind, payload)
                        else:
                            on_message(kind, payload)
                        continue
                except (EOFError, OSError):
                    break
                if not entry.process.is_alive() and not entry.conn.poll():
                    break
            entry.process.join()
            entry.conn.close()
            with self._lock:
                self._running.pop(job_id, None)
            if terminal is not None:
                on_exit(terminal)
            elif timed_out:
                on_exit(("timeout", entry.timeout_s))
            elif entry.cancelled:
                on_exit(("cancelled", entry.detail or "cancelled"))
            else:
                on_exit(("crashed", entry.process.exitcode))
        finally:
            self._slots.release()

    # -- control -----------------------------------------------------------

    def cancel(self, job_id: str, detail: str = "cancelled") -> bool:
        """Kill a running job's worker; False when it is not running."""
        with self._lock:
            entry = self._running.get(job_id)
            if entry is None:
                return False
            entry.cancelled = True
            entry.detail = detail
        entry.process.terminate()
        return True

    def running(self) -> int:
        with self._lock:
            return len(self._running)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every running worker to exit (no new dispatches are
        the caller's responsibility).  True when the pool emptied."""
        deadline = None if timeout is None else time.time() + timeout
        while self.running():
            if deadline is not None and time.time() >= deadline:
                return False
            time.sleep(_POLL_S)
        return True
