"""Worker-process side of the job service.

Each dispatched job runs :func:`job_worker_main` in a fresh process with
one pipe back to the server.  The worker rebuilds the spec from its
declarative recipe (exactly like the experiment engine's fan-out
workers), then simulates it in bounded ``pause_at`` slices so it can
publish progress between slices without perturbing the simulation:
``pause_at`` preserves fast-forward elision windows (DESIGN.md §8), so
the sliced run is cycle-for-cycle and counter-for-counter identical to
an uninterrupted :func:`repro.experiments.runner.execute` — the parity
tests in tests/test_serve.py hold the service to that.

Heartbeats travel through the machine's own observability bus: the
worker publishes a ``heartbeat`` event at each slice boundary and a
:class:`~repro.obs.progress.ProgressSink` forwards it down the pipe.
Subscribing only to the heartbeat kind keeps ``pipeline_active`` False,
so the fast-forward scheduler stays engaged.

Pipe protocol (worker -> server), all JSON-safe tuples:

* ``("heartbeat", {"cycle", "retired", "ipc"})`` — progress sample;
* ``("ok", run_result_dict)`` — terminal success;
* ``("error", spec_error_dict)`` — terminal failure, a structured
  :meth:`~repro.experiments.engine.SpecError.to_dict` payload.
"""

from __future__ import annotations

import traceback
from typing import Callable, Dict, Optional

from repro.common.config import RunOptions
from repro.experiments.runner import RunResult, finalize
from repro.obs.progress import ProgressSink, publish_heartbeat
from repro.system.machine import Machine
from repro.workloads.base import RunSpec

#: Default slice length between heartbeats.  Large enough that slicing
#: cost is noise (runs are hundreds of kcycles), small enough that a
#: watcher sees several beats per second of simulation.
HEARTBEAT_CYCLES = 50_000


def execute_sliced(spec: RunSpec,
                   on_sample: Optional[Callable[[Dict], None]] = None,
                   heartbeat_cycles: int = HEARTBEAT_CYCLES,
                   check: bool = True) -> RunResult:
    """Run ``spec`` to completion in heartbeat-emitting slices.

    Equivalent to ``execute(spec)`` — same cycles, stats, energy, and
    metrics snapshot — but pauses every ``heartbeat_cycles`` cycles to
    publish a heartbeat event.  The overall ``max_cycles`` budget is
    enforced against the absolute cycle the uninterrupted run would
    stop at, so overruns fail exactly like the direct path.
    """
    machine = Machine(spec.system)
    machine.load(spec.workload)
    if on_sample is not None:
        machine.obs.attach(ProgressSink(on_sample), kinds=ProgressSink.KINDS)
    budget_end = machine.cycle + spec.max_cycles
    while True:
        target = min(machine.cycle + heartbeat_cycles, budget_end)
        machine.run(options=RunOptions(
            max_cycles=budget_end - machine.cycle, pause_at=target))
        publish_heartbeat(machine)
        if machine.finished() or machine.cycle >= budget_end:
            break
    return finalize(machine, spec, machine.cycle, check=check)


def job_worker_main(conn, request_data: Dict,
                    heartbeat_cycles: int = HEARTBEAT_CYCLES) -> None:
    """Process entry point: build, simulate with heartbeats, report."""
    from repro.experiments.engine import build_spec
    from repro.serve.protocol import spec_request_from_dict
    req = spec_request_from_dict(request_data)
    try:
        spec = build_spec(req)
        result = execute_sliced(spec, _beat_sender(conn),
                                heartbeat_cycles=heartbeat_cycles)
        conn.send(("ok", result.to_dict()))
    except Exception as exc:
        from repro.experiments.engine import SpecError
        error = SpecError(req, type(exc).__name__, str(exc),
                          traceback.format_exc())
        try:
            conn.send(("error", error.to_dict()))
        except (BrokenPipeError, OSError):
            pass  # server went away; nothing left to report to
    finally:
        conn.close()


def _beat_sender(conn) -> Callable[[Dict], None]:
    def send(sample: Dict) -> None:
        try:
            conn.send(("heartbeat", sample))
        except (BrokenPipeError, OSError):
            pass  # cancelled mid-run: the process is about to die anyway
    return send
