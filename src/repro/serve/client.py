"""Synchronous stdlib client for a remote job server.

``repro.api.connect(url)`` returns a :class:`Client` speaking the wire
protocol of :mod:`repro.serve.server` — the same five verbs as the
in-process facade, so swapping local execution for a remote service is
a one-line change.  Built on ``http.client`` only; the SSE reader is a
plain generator over the streaming response body, which is all the
CLI's ``repro watch`` needs.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.common.errors import ReproError
from repro.common.serialize import decode_record, encode_record
from repro.experiments.engine import SpecRequest
from repro.serve.protocol import TERMINAL_STATES, JobRecord, JobRequest


class RemoteError(ReproError):
    """A non-2xx response from the job server."""

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        self.status = status
        #: Populated from the ``Retry-After`` header on 429 back-pressure.
        self.retry_after_s = retry_after_s
        super().__init__(f"server answered {status}: {message}")


class Client:
    """One server connection's worth of state (base URL, timeouts)."""

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ReproError(f"unsupported scheme {parts.scheme!r} "
                             "(the job server speaks plain http)")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8321
        self.timeout_s = timeout_s

    # -- verbs -------------------------------------------------------------

    def submit(self, request: Union[SpecRequest, JobRequest], *,
               tenant: str = "default", priority: int = 0,
               timeout_s: Optional[float] = None) -> JobRecord:
        """Submit one job; returns its record (``cached`` jobs are DONE)."""
        if isinstance(request, SpecRequest):
            request = JobRequest(request=request, tenant=tenant,
                                 priority=priority, timeout_s=timeout_s)
        status, payload, _ = self._request(
            "POST", "/v1/jobs", encode_record("job-request", request))
        return decode_record(payload, "job-record")

    def status(self, job_id: str) -> JobRecord:
        _, payload, _ = self._request("GET", f"/v1/jobs/{job_id}")
        return decode_record(payload, "job-record")

    def cancel(self, job_id: str) -> JobRecord:
        try:
            _, payload, _ = self._request("DELETE", f"/v1/jobs/{job_id}")
        except RemoteError as exc:
            if exc.status != 409:
                raise
            return self.status(job_id)
        return decode_record(payload, "job-record")

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        _, payload, _ = self._request("GET", path)
        return [decode_record(record, "job-record")
                for record in payload["jobs"]]

    def health(self) -> Dict:
        _, payload, _ = self._request("GET", "/v1/health")
        return payload

    def drain(self) -> None:
        self._request("POST", "/v1/drain")

    # -- watching ----------------------------------------------------------

    def watch(self, job_id: str) -> Iterator[Tuple[str, Dict]]:
        """Yield the job's SSE feed: ``("heartbeat", sample)`` and
        ``("state", record_dict)`` events, ending after the terminal
        state event arrives."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise self._error(response.status,
                                  response.read(),
                                  response.getheader("Retry-After"))
            event: Optional[str] = None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: ") and event is not None:
                    payload = json.loads(line[len("data: "):])
                    yield event, payload
                    if event == "state" \
                            and payload.get("state") in TERMINAL_STATES:
                        return
                    event = None
        finally:
            conn.close()

    def wait(self, job_id: str) -> JobRecord:
        """Block (via the SSE feed) until the job is terminal."""
        record: Optional[JobRecord] = None
        for event, payload in self.watch(job_id):
            if event == "state":
                record = JobRecord.from_dict(payload)
        if record is None:  # stream ended without a state event
            record = self.status(job_id)
        return record

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None
                 ) -> Tuple[int, Any, Dict[str, str]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            data = json.dumps(body).encode("utf-8") \
                if body is not None else None
            headers = {"Content-Type": "application/json"} \
                if data is not None else {}
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise self._error(response.status, raw,
                                  response.getheader("Retry-After"))
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, payload, dict(response.getheaders())
        finally:
            conn.close()

    @staticmethod
    def _error(status: int, raw: bytes,
               retry_after: Optional[str]) -> RemoteError:
        try:
            message = json.loads(raw.decode("utf-8"))["error"]["message"]
        except Exception:
            message = raw.decode("utf-8", "replace") or "no detail"
        retry_after_s = None
        if retry_after is not None:
            try:
                retry_after_s = float(retry_after)
            except ValueError:
                pass
        return RemoteError(status, message, retry_after_s)
