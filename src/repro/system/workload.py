"""Workload container: programs, memory image, placement, SPL setup.

A :class:`Workload` bundles everything a :class:`repro.system.machine.Machine`
needs to run one benchmark variant: per-thread programs, the initial memory
image, the core placement, a hook that installs SPL bindings/partitions/
barriers, and a result checker that validates simulated output against the
kernel's reference implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import WorkloadError
from repro.isa.program import MemoryImage, ThreadSpec


class Workload:
    """One runnable benchmark variant."""

    def __init__(self, name: str, image: MemoryImage,
                 threads: List[ThreadSpec],
                 placement: Optional[List[int]] = None,
                 setup: Optional[Callable] = None,
                 check: Optional[Callable] = None,
                 metadata: Optional[Dict] = None) -> None:
        """
        :param placement: core index for each thread (default: thread i on
            core i).
        :param setup: ``setup(machine)`` called after threads are placed;
            installs SPL configurations, partitions, and barriers.
        :param check: ``check(memory)`` called after the run; raises
            AssertionError when simulated results disagree with the
            reference implementation.
        :param metadata: free-form experiment info (iteration counts, sizes).
        """
        if not threads:
            raise WorkloadError(f"{name}: no threads")
        self.name = name
        self.image = image
        self.threads = threads
        self.placement = placement or list(range(len(threads)))
        if len(self.placement) != len(threads):
            raise WorkloadError(f"{name}: placement/thread count mismatch")
        if len(set(self.placement)) != len(self.placement):
            raise WorkloadError(f"{name}: two threads on one core")
        self.setup = setup
        self.check = check
        self.metadata = dict(metadata or {})

    def __repr__(self) -> str:
        return (f"Workload({self.name!r}, {len(self.threads)} threads, "
                f"cores {self.placement})")
