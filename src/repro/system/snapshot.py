"""Deterministic machine snapshots: versioned capture, file I/O, resume.

A snapshot (DESIGN.md §8) is the JSON record of every piece of *mutable*
machine state — :meth:`repro.system.machine.Machine.snapshot` — wrapped
in a provenance envelope naming the :class:`SpecRequest` recipe that
builds the machine it came from.  Restoring never deserializes programs,
bindings, or wiring: the recipe rebuilds a fresh machine (config +
workload load + setup), then :meth:`Machine.restore` overwrites its
state, and continuing the run is cycle-for-cycle identical to never
having paused (tests/test_snapshot.py proves this differentially).

The file format registers the ``machine-snapshot`` codec in
:mod:`repro.common.serialize`, so snapshot files share the repo-wide
``kind``/``schema`` envelope and version-check error path.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

from repro.common.config import RunOptions
from repro.common.errors import ConfigError
from repro.common.serialize import (decode_record, encode_record,
                                    register_codec)
from repro.system.machine import Machine

#: Bump whenever any component's ``snapshot_state`` layout changes.
SNAPSHOT_SCHEMA_VERSION = 1


def take_snapshot(machine: Machine, request=None) -> Dict:
    """Capture ``machine`` into a self-describing versioned record.

    ``request`` (a :class:`repro.experiments.engine.SpecRequest`) is the
    rebuild recipe embedded for :func:`resume_from_file`; pass None for
    ad-hoc machines the caller will rebuild itself.
    """
    payload = {
        "request": dataclasses.asdict(request) if request is not None
        else None,
        "cycle": machine.cycle,
        "state": machine.snapshot(),
    }
    return encode_record("machine-snapshot", payload)


def write_snapshot(path, machine: Machine, request=None) -> Dict:
    """Serialize :func:`take_snapshot` to ``path``; returns the record."""
    record = take_snapshot(machine, request)
    with open(path, "w") as handle:
        json.dump(record, handle)
    return record


def read_snapshot(path) -> Dict:
    """Load and version-check a snapshot file; returns the payload."""
    with open(path) as handle:
        record = json.load(handle)
    return decode_record(record, expect_kind="machine-snapshot")


def rebuild_request(payload: Dict):
    """The :class:`SpecRequest` a snapshot payload was taken from."""
    from repro.experiments.engine import SpecRequest
    fields = payload.get("request")
    if fields is None:
        raise ConfigError(
            "snapshot carries no build recipe (taken with request=None); "
            "rebuild the machine yourself and call Machine.restore")
    fields = dict(fields)
    fields["params"] = tuple(
        (key, value) for key, value in fields.get("params", ()))
    return SpecRequest(**fields)


def restore_machine(payload: Dict) -> Tuple[Machine, object]:
    """Rebuild the snapshotted machine, ready to continue running.

    Returns ``(machine, spec)``: a fresh machine built from the embedded
    recipe with the workload loaded and all mutable state restored, plus
    the rebuilt :class:`RunSpec` (for ``max_cycles`` budgets and the
    workload's ``check``).
    """
    from repro.experiments.engine import build_spec
    spec = build_spec(rebuild_request(payload))
    machine = Machine(spec.system)
    machine.load(spec.workload)
    machine.restore(payload["state"])
    return machine, spec


def resume_from_file(path, max_cycles: Optional[int] = None,
                     check: bool = True) -> Tuple[Machine, int]:
    """Continue a snapshotted run to completion.

    Returns ``(machine, cycles)`` — the final cycle count matches an
    uninterrupted run of the same spec exactly.
    """
    payload = read_snapshot(path)
    machine, spec = restore_machine(payload)
    budget = spec.max_cycles if max_cycles is None else max_cycles
    cycles = machine.run(options=RunOptions(max_cycles=budget))
    machine.finish_observation()
    if check and spec.workload.check is not None:
        spec.workload.check(machine.memory)
    return machine, cycles


def _decode_payload(payload: Dict) -> Dict:
    if "state" not in payload or "cycle" not in payload:
        raise ConfigError("malformed machine-snapshot payload")
    return payload


register_codec("machine-snapshot", SNAPSHOT_SCHEMA_VERSION,
               dict, _decode_payload)
