"""System assembly: clusters, the heterogeneous CMP, and workloads."""

from repro.system.machine import ClusterInstance, Machine
from repro.system.snapshot import (SNAPSHOT_SCHEMA_VERSION, read_snapshot,
                                   restore_machine, resume_from_file,
                                   take_snapshot, write_snapshot)
from repro.system.workload import Workload

__all__ = ["ClusterInstance", "Machine", "Workload",
           "SNAPSHOT_SCHEMA_VERSION", "take_snapshot", "write_snapshot",
           "read_snapshot", "restore_machine", "resume_from_file"]
