"""System assembly: clusters, the heterogeneous CMP, and workloads."""

from repro.system.machine import ClusterInstance, Machine
from repro.system.workload import Workload

__all__ = ["ClusterInstance", "Machine", "Workload"]
