"""Human-readable post-run machine reports.

``machine_report`` condenses the statistics tree into the quantities an
architect looks at first: per-core IPC and stall profile, cache hit rates,
bus pressure, and fabric utilization.

This module is now a thin facade over :mod:`repro.obs.metrics` (one
serializer for run-level metrics, shared with the experiment engine's
cached results) and :mod:`repro.obs.render` (one text renderer).  The
historical signatures are preserved.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import metrics, render
from repro.system.machine import Machine


def core_summary(machine: Machine, index: int) -> Optional[Dict]:
    """IPC, branch accuracy, and stall profile for one core."""
    if not 0 <= index < len(machine.cores):
        return None
    return metrics.core_summary(machine.stats.as_dict(), index)


def fabric_summary(machine: Machine, cluster_id: int = 0) -> Optional[Dict]:
    """Issue counts, utilization, and stall profile for one SPL cluster."""
    controller = None
    for cluster in machine.clusters:
        if cluster.index == cluster_id:
            controller = cluster.controller
    if controller is None:
        return None
    return metrics.fabric_summary(machine.stats.as_dict(), cluster_id,
                                  machine.cycle, controller.config.rows)


def machine_report(machine: Machine) -> str:
    """Render the whole machine's post-run report."""
    return render.render_snapshot(metrics.snapshot_from_machine(machine))
