"""Human-readable post-run machine reports.

``machine_report`` condenses the statistics tree into the quantities an
architect looks at first: per-core IPC and stall profile, cache hit rates,
bus pressure, and fabric utilization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.system.machine import Machine


def core_summary(machine: Machine, index: int) -> Optional[Dict]:
    """IPC, branch accuracy, and stall profile for one core."""
    stats = machine.stats.find(f"cpu{index}")
    if stats is None or not stats.get("cycles"):
        return None
    cycles = stats.get("cycles")
    branches = stats.get("branches_resolved")
    summary = {
        "core": index,
        "cycles": int(cycles),
        "retired": int(stats.get("retired")),
        "ipc": stats.get("retired") / cycles,
        "branch_accuracy": (1 - stats.get("mispredicts") / branches
                            if branches else 1.0),
        "load_replays": int(stats.get("load_replays")),
    }
    mem = machine.stats.find("mem")
    port = mem.find(f"core{index}") if mem is not None else None
    if port is not None:
        l1_accesses = port.get("l1d_hits") + port.get("l1d_misses")
        summary["l1d_hit_rate"] = (port.get("l1d_hits") / l1_accesses
                                   if l1_accesses else 1.0)
        l2_accesses = port.get("l2_hits") + port.get("l2_misses")
        summary["l2_hit_rate"] = (port.get("l2_hits") / l2_accesses
                                  if l2_accesses else 1.0)
    return summary


def fabric_summary(machine: Machine, cluster_id: int = 0) -> Optional[Dict]:
    """Issue counts, utilization, and stall profile for one SPL cluster."""
    stats = machine.stats.find(f"spl{cluster_id}")
    if stats is None:
        return None
    fabric_cycles = max(1, machine.cycle // 4)
    from repro.common.config import spl_config
    rows = spl_config().rows
    return {
        "cluster": cluster_id,
        "issues": int(stats.get("issues")),
        "barrier_releases": int(stats.get("barrier_releases")),
        "reconfigurations": int(stats.get("reconfigurations")),
        "rows_evaluated": int(stats.get("rows_evaluated")),
        "row_utilization": stats.get("rows_evaluated")
        / (fabric_cycles * rows),
        "output_queue_stalls": int(stats.get("output_queue_stalls")),
        "dest_absent_stalls": int(stats.get("dest_absent_stalls")),
    }


def machine_report(machine: Machine) -> str:
    """Render the whole machine's post-run report."""
    lines: List[str] = [f"machine: {machine.cycle} cycles, "
                        f"{machine.total_retired()} instructions retired"]
    for index in range(len(machine.cores)):
        summary = core_summary(machine, index)
        if summary is None:
            continue
        line = (f"  core {index}: IPC {summary['ipc']:.3f}  "
                f"retired {summary['retired']}  "
                f"branch-acc {summary['branch_accuracy'] * 100:.1f}%")
        if "l1d_hit_rate" in summary:
            line += f"  L1D {summary['l1d_hit_rate'] * 100:.1f}%"
        lines.append(line)
    for cluster in machine.clusters:
        if cluster.controller is None:
            continue
        summary = fabric_summary(machine, cluster.index)
        if summary and summary["issues"]:
            lines.append(
                f"  spl {cluster.index}: {summary['issues']} issues  "
                f"util {summary['row_utilization'] * 100:.1f}%  "
                f"reconfigs {summary['reconfigurations']}  "
                f"barriers {summary['barrier_releases']}")
    bus = machine.stats.find("mem").find("bus")
    if bus is not None and bus.get("transactions"):
        lines.append(f"  bus: {bus.get('transactions'):.0f} transactions, "
                     f"{bus.get('wait_cycles'):.0f} wait cycles")
    return "\n".join(lines)
