"""The simulated heterogeneous CMP (Figure 2(a)).

A :class:`Machine` instantiates clusters of out-of-order cores over a
MESI-coherent memory system; SPL clusters additionally own a fabric
controller whose ports are attached to their cores.  The machine provides
the run loop, thread placement, migration (with the paper's 500-cycle
context-switch cost), and convenience wrappers for SPL configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import RunOptions, SystemConfig
from repro.common.errors import ConfigError, DeadlockError, SimulationError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController
from repro.core.function import SplFunction
from repro.core.tables import BarrierBus
from repro.cpu.blockgen import BlockRunner, MultiBlockRunner, _BG_NEVER
from repro.cpu.context import ThreadContext
from repro.cpu.pipeline import OutOfOrderCore
from repro.mem.hierarchy import CoherentMemorySystem
from repro.mem.memory import MainMemory
from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.system.workload import Workload

_WATCHDOG_STRIDE = 4096

#: Ceiling for the fast-forward probe backoff (cycles between quiescence
#: probes while the machine keeps vetoing jumps).  Probing every few cycles
#: through a compute-bound phase costs more than it saves (~8% on the seq
#: bench case at a cap of 4); a long backoff only delays *discovering* a
#: quiesce window — never correctness — and barrier/queue waits are
#: thousands of cycles, so they are still caught near their start.
_FF_BACKOFF_CAP = 256

#: ``ff_wake`` sentinel for an elided core that is *externally driven*
#: (it cannot bound its own wake-up); only an event poke resumes it.
_FF_NEVER = 1 << 62


class ClusterInstance:
    """One cluster's cores plus (for SPL clusters) the fabric controller."""

    def __init__(self, index: int, kind: str, core_indices: List[int],
                 controller: Optional[SplClusterController]) -> None:
        self.index = index
        self.kind = kind
        self.core_indices = core_indices
        self.controller = controller


class Machine:
    """A runnable CMP instance."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.stats = Stats("machine")
        self.stats.declare("migrations")
        #: One observability bus for the whole machine; every simulated
        #: structure publishes into it (see repro.obs).  Zero-cost until a
        #: sink is attached with ``machine.obs.attach(...)``.
        self.obs = EventBus()
        self.memory = MainMemory()
        self.cycle = 0
        cache_configs = []
        for cluster in config.clusters:
            for _ in range(cluster.n_cores):
                cache_configs.append(
                    (cluster.core.l1i, cluster.core.l1d, cluster.core.l2))
        self.mem_system = CoherentMemorySystem(
            cache_configs, config, self.stats.child("mem"), obs=self.obs)
        bus_latency = 10
        for cluster in config.clusters:
            if cluster.kind == "spl":
                bus_latency = cluster.spl.barrier_bus_latency
                break
        self.barrier_bus = BarrierBus(bus_latency)
        self.cores: List[OutOfOrderCore] = []
        self.clusters: List[ClusterInstance] = []
        #: Everything with a ``tick(cycle)`` method: SPL controllers and any
        #: baseline communication hardware attached later.
        self._controllers: List = []
        core_index = 0
        for cluster_id, cluster in enumerate(config.clusters):
            indices = []
            for _ in range(cluster.n_cores):
                core = OutOfOrderCore(core_index, cluster.core,
                                      self.mem_system, self.memory,
                                      self.stats.child(f"cpu{core_index}"),
                                      obs=self.obs)
                self.cores.append(core)
                indices.append(core_index)
                core_index += 1
            controller = None
            if cluster.kind == "spl":
                controller = SplClusterController(
                    cluster_id, cluster.spl, self.barrier_bus,
                    self.stats.child(f"spl{cluster_id}"), obs=self.obs)
                for slot, index in enumerate(indices):
                    self.cores[index].spl_port = controller.ports[slot]
                controller.wake_cb = self._make_waker(list(indices))
                self._controllers.append(controller)
            self.clusters.append(
                ClusterInstance(cluster_id, cluster.kind, indices, controller))
        self._cluster_by_core: Dict[int, ClusterInstance] = {
            index: cluster_instance
            for cluster_instance in self.clusters
            for index in cluster_instance.core_indices}
        self.contexts: List[ThreadContext] = []
        self.thread_core: Dict[int, int] = {}
        #: Watchdog progress floor: the last cycle the fast-forward
        #: scheduler *proved* every tickable quiescent up to.  A bounded
        #: jump is forward progress (some event is scheduled), so the
        #: watchdog measures staleness from max(last retire, this floor).
        self._ff_progress = 0
        #: Probe backoff: while the machine is busy, almost every
        #: quiescence probe fails, and probing every cycle costs more than
        #: the skips save.  After a failed probe the next one waits
        #: 2/4/8/16 cycles (capped); any successful jump resets it.
        #: Unprobed cycles simply tick naively, so this trades a few
        #: skippable cycles at a window's start for near-zero probe
        #: overhead in busy phases — cycle-exactness is unaffected.
        self._ff_backoff = 1
        self._ff_resume_probe = 0
        #: Trace-cache block compilation (repro.cpu.blockgen): per-core
        #: specialized executors plus an engagement backoff mirroring the
        #: fast-forward probe's.  Deliberately *not* snapshotted — these
        #: are performance hints only; a restored machine re-derives them
        #: and produces identical cycles and stats either way.
        self._bg_runners: Dict[int, BlockRunner] = {}
        self._bg_backoff = 1
        self._bg_resume_probe = 0
        #: Multi-core fused windows (DESIGN.md §10) plus per-core
        #: engagement backoff: one core deopting every window must not
        #: starve compiled execution on its siblings, so each core's
        #: eligibility backs off independently of the global probe.
        #: Not snapshotted, like every other ``_bg_*`` hint.
        self._bg_multi = MultiBlockRunner(self)
        self._bg_core_backoff: Dict[int, int] = {}
        self._bg_core_resume: Dict[int, int] = {}

    def _make_waker(self, indices: List[int]):
        """Delivery callback for a controller: pokes the slot's core so the
        fast-forward scheduler resumes ticking it (see DESIGN.md)."""
        cores = self.cores

        def wake(slot: int) -> None:
            cores[indices[slot]].ff_poke = True

        return wake

    # -- lookup helpers -----------------------------------------------------------

    def cluster_of_core(self, core_index: int) -> ClusterInstance:
        cluster = self._cluster_by_core.get(core_index)
        if cluster is None:
            raise ConfigError(f"no cluster owns core {core_index}")
        return cluster

    def core_slot(self, core_index: int) -> Tuple[ClusterInstance, int]:
        cluster = self.cluster_of_core(core_index)
        return cluster, cluster.core_indices.index(core_index)

    # -- SPL configuration ----------------------------------------------------------

    def configure_spl(self, core_index: int, config_id: int,
                      function: SplFunction,
                      dest_thread: Optional[int] = None,
                      barrier_id: Optional[int] = None) -> None:
        """Bind ``config_id`` on the core's SPL cluster (runtime action)."""
        cluster, slot = self.core_slot(core_index)
        if cluster.controller is None:
            raise ConfigError(
                f"core {core_index} is not part of an SPL cluster")
        cluster.controller.configure(slot, config_id, function,
                                     dest_thread, barrier_id)

    def register_barrier(self, barrier_id: int, app_id: int,
                         thread_ids) -> None:
        self.barrier_bus.register(barrier_id, app_id, tuple(thread_ids))

    def set_partitions(self, core_index: int, row_counts: List[int],
                       core_assignment: Optional[List[int]] = None) -> None:
        cluster, _ = self.core_slot(core_index)
        if cluster.controller is None:
            raise ConfigError("not an SPL cluster")
        cluster.controller.set_partitions(row_counts, core_assignment)

    def add_controller(self, controller) -> None:
        """Register extra per-cycle hardware (baseline comm networks)."""
        self._controllers.append(controller)

    # -- workload loading --------------------------------------------------------------

    def load(self, workload: Workload) -> None:
        """Load memory, place threads, and run the workload's SPL setup."""
        self.memory.load_image(workload.image)
        for spec, core_index in zip(workload.threads, workload.placement):
            if not 0 <= core_index < len(self.cores):
                raise ConfigError(f"placement on missing core {core_index}")
            ctx = ThreadContext(spec)
            self.contexts.append(ctx)
            self.thread_core[ctx.thread_id] = core_index
            self.cores[core_index].attach(ctx, self.cycle)
        if workload.setup is not None:
            workload.setup(self)

    # -- execution ------------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None,
            until: Optional[Callable[[], bool]] = None,
            fast_forward: Optional[bool] = None, *,
            options: Optional[RunOptions] = None) -> int:
        """Advance until all threads finish (or a stop condition fires).

        Returns the cycle count at stop.  Raises DeadlockError when no core
        retires anything for the configured watchdog window.

        The run is configured by one :class:`RunOptions` value.  Passing
        ``options=`` is the current surface; the loose ``max_cycles`` /
        ``until`` / ``fast_forward`` keywords are a deprecated shim kept
        for one release and fold into an equivalent ``RunOptions`` (mixing
        both styles is an error).

        ``fast_forward`` selects the scheduler: None (the default) enables
        the quiescence-aware next-event scheduler unless the
        ``REPRO_NO_FASTFORWARD`` environment variable is set; False forces
        the naive per-cycle loop.  Even when enabled, fast-forward silently
        falls back to per-cycle ticking while an ``until`` predicate is
        supplied (it may read arbitrary machine state between cycles) or a
        pipeline-level observability sink is attached.  Both schedulers are
        cycle-exact: final cycle counts, retired-instruction counts, and
        stats totals are identical (see DESIGN.md and
        tests/test_fastforward.py).

        ``options.pause_at`` stops the loop at exactly that absolute cycle
        *without* flushing fast-forward elision windows and without the
        max-cycles overrun error: the machine is left in the precise state
        the naive loop would see at the top of that cycle, ready for
        :meth:`snapshot` (see DESIGN.md §8).  A paused run resumes with
        another :meth:`run` call.
        """
        if options is None:
            options = RunOptions(
                max_cycles=(1_000_000_000 if max_cycles is None
                            else max_cycles),
                until=until, fast_forward=fast_forward)
        elif (max_cycles is not None or until is not None
                or fast_forward is not None):
            raise ConfigError(
                "pass either options= or the deprecated loose keywords, "
                "not both")
        options.validate()
        options = options.resolve()
        until = options.until
        pause_at = options.pause_at
        cores = self.cores
        controllers = self._controllers
        limit = self.cycle + options.max_cycles
        stop = limit if pause_at is None else min(limit, pause_at)
        next_watchdog = self.cycle + _WATCHDOG_STRIDE
        # Unknown hardware (a controller without the next_event_cycle
        # contract) disables fast-forward entirely: the scheduler could
        # neither bound its events nor trust it to poke elided cores.
        # Blockgen leans on the same contract to bound its windows.
        bounded = all(hasattr(c, "next_event_cycle") for c in controllers)
        use_ff = options.fast_forward and until is None and bounded
        use_bg = options.blockgen and until is None and bounded
        while self.cycle < stop:
            if until is not None and until():
                return self.cycle
            running = False
            cycle = self.cycle
            for core in cores:
                if core.ctx is None or core.halted:
                    continue
                running = True
                if core.ff_skip_from >= 0:
                    # Elided: the probe proved this core dead until
                    # ``ff_wake`` unless an external event pokes it.
                    if cycle < core.ff_wake and not core.ff_poke:
                        continue
                    core.ff_poke = False
                    core.credit_fast_forward(core.ff_skip_from, cycle - 1)
                    core.ff_skip_from = -1
                core.tick(cycle)
            if not running:
                return self.cycle
            for controller in controllers:
                controller.tick(cycle)
            nxt = cycle + 1
            advanced = False
            if (use_bg and cycle >= self._bg_resume_probe
                    and not self.obs.active):
                done = self._try_block_window(nxt, min(stop, next_watchdog),
                                              use_ff)
                if done > nxt:
                    self._bg_backoff = 1
                    nxt = done
                    advanced = True
                else:
                    self._bg_backoff = min(self._bg_backoff * 2,
                                           _FF_BACKOFF_CAP)
                    self._bg_resume_probe = cycle + self._bg_backoff
            if (not advanced and use_ff and cycle >= self._ff_resume_probe
                    and not self.obs.pipeline_active):
                target, progressed = self._ff_probe(
                    cycle, min(stop, next_watchdog))
                if target > nxt:
                    nxt = target
                if progressed:
                    self._ff_backoff = 1
                else:
                    self._ff_backoff = min(self._ff_backoff * 2,
                                           _FF_BACKOFF_CAP)
                    self._ff_resume_probe = cycle + self._ff_backoff
            self.cycle = nxt
            if nxt >= next_watchdog:
                next_watchdog = nxt + _WATCHDOG_STRIDE
                self._check_watchdog()
        if pause_at is not None and self.cycle >= pause_at \
                and self.cycle < limit:
            # Paused, not finished: leave elision windows un-credited so a
            # snapshot captures (and a resumed run replays) the exact
            # mid-run state.
            return self.cycle
        self._ff_flush()
        if until is not None and until():
            return self.cycle
        if any(core.active for core in cores):
            raise SimulationError(
                f"run exceeded {options.max_cycles} cycles without "
                f"completing")
        return self.cycle

    def _ff_probe(self, now: int, ceiling: int) -> Tuple[int, bool]:
        """One fast-forward scheduling decision at the end of cycle ``now``.

        Returns ``(next_cycle, progressed)``.  Each active core is either
        *elided* — marked to stop ticking until its reported wake cycle
        (``_FF_NEVER`` when it is externally driven) or until an event
        poke — or it *vetoes* the global jump because it can act next
        cycle.  When nobody vetoes, the machine jumps to the earliest core
        wake or controller event, clamped to ``ceiling`` (run limit /
        watchdog boundary, so both fire on exactly the cycle the naive
        loop would inspect them).  Elision marks survive a veto: a busy
        core no longer forces its quiescent siblings to tick.
        ``progressed`` drives the probe backoff — True when the machine
        jumped or newly elided a core.
        """
        nxt = now + 1
        best = ceiling
        any_bound = False
        veto = False
        elided = False
        saw_core = False
        for core in self.cores:
            if core.ctx is None or core.halted:
                continue
            saw_core = True
            if core.ff_skip_from >= 0:
                if core.ff_poke:
                    # A delivery just landed for this elided core: it must
                    # tick next cycle (the resume path consumes the poke).
                    veto = True
                    continue
                wake = core.ff_wake
                if wake < _FF_NEVER:
                    any_bound = True
                    if wake < best:
                        best = wake
                continue
            if core.ff_poke:
                # A delivery landed this very cycle: the core must tick
                # next cycle to observe it, exactly as the naive loop would.
                core.ff_poke = False
                veto = True
                continue
            t = core.next_event_cycle(now)
            if t is None:
                # Externally driven (e.g. parked in spl_recv with an empty
                # output queue): stop ticking until a delivery pokes it.
                core.ff_elide(nxt, _FF_NEVER)
                elided = True
            elif t <= nxt:
                veto = True
            else:
                core.ff_elide(nxt, t)
                elided = True
                any_bound = True
                if t < best:
                    best = t
        if not saw_core:
            # Every core halted: the loop is about to return on its own; a
            # jump here would overshoot the final cycle.
            return nxt, False
        if veto:
            return nxt, elided
        for controller in self._controllers:
            t = controller.next_event_cycle(now)
            if t is None:
                continue
            if t <= nxt:
                return nxt, elided
            any_bound = True
            if t < best:
                best = t
        if best <= nxt:
            return nxt, elided
        if any_bound:
            # Some tickable has an event scheduled: this is forward
            # progress, not a hang, even if no core retires for a long
            # legal stall.
            self._ff_progress = best
        return best, True

    def _runner_for(self, core) -> BlockRunner:
        """The cached :class:`BlockRunner` for ``core``, rebuilt whenever
        the core's bound context has changed since the last window."""
        runner = self._bg_runners.get(core.index)
        if runner is None or runner.ctx is not core.ctx:
            runner = BlockRunner(core)
            self._bg_runners[core.index] = runner
        return runner

    def _bg_note(self, index: int, productive: bool, at: int) -> None:
        """Per-core engagement backoff (independent of the global probe
        backoff): a core that keeps deopting stops being *compiled* for a
        while but still ticks inside its siblings' windows."""
        if productive:
            self._bg_core_backoff[index] = 1
            self._bg_core_resume[index] = 0
        else:
            backoff = min(self._bg_core_backoff.get(index, 1) * 2,
                          _FF_BACKOFF_CAP)
            self._bg_core_backoff[index] = backoff
            self._bg_core_resume[index] = at + backoff

    def _try_block_window(self, start: int, ceiling: int,
                          allow_elide: bool = False) -> int:
        """Attempt a fused block-compiled window ``[start, ...)``.

        Engagement requires at least one running core that is eligible
        for compiled execution — not elided, not draining, not backed
        off.  One running core takes the specialized single-core
        ``run_window``, which additionally requires every controller
        provably quiescent until some bound (the same
        ``next_event_cycle`` contract fast-forward relies on: skipped
        controller ticks are no-ops) because it never ticks them.  Two
        or more running cores take the
        :class:`repro.cpu.blockgen.MultiBlockRunner` per-cycle walk, in
        which ineligible cores still advance (interpreted or elided)
        while their siblings run compiled; the walk ticks controllers
        itself from their event bound on, so streaming phases fuse too.  ``allow_elide`` forwards the
        run's fast-forward setting to the in-window elision machinery.
        Returns the first cycle *not* executed — ``start`` when the
        window declines or deopts immediately.
        """
        actives = [core for core in self.cores
                   if core.ctx is not None and not core.halted]
        if not actives:
            return start
        if len(actives) == 1:
            active = actives[0]
            if (active.ff_skip_from >= 0 or active.ff_poke
                    or active.stop_fetch or start < active.stall_until
                    or start < self._bg_core_resume.get(active.index, 0)):
                return start
            end = ceiling
            now = start - 1
            for controller in self._controllers:
                event = controller.next_event_cycle(now)
                if event is not None and event < end:
                    end = event
            if end <= start:
                return start
            done = self._runner_for(active).run_window(start, end)
            self._bg_note(active.index, done > start, done)
            return done
        # Multi-core window.  An elided core with a pending poke must
        # resume through the machine loop's own resume block first.
        any_live = False
        for core in actives:
            if core.ff_skip_from >= 0:
                if core.ff_poke:
                    return start
            else:
                any_live = True
        if not any_live:
            return start
        # Unlike the single-core path, a controller event does not bound
        # the multi window: the walk ticks controllers itself from
        # ``ctl_resume`` on (going live immediately when a streaming
        # controller's bound is already due), so the window runs to the
        # ceiling instead of exiting at every delivery.
        now = start - 1
        ctl_resume = _BG_NEVER
        for controller in self._controllers:
            event = controller.next_event_cycle(now)
            if event is not None and event < ctl_resume:
                ctl_resume = event
        resume = self._bg_core_resume
        runners = []
        eligible = 0
        for core in actives:
            # Elided cores get a runner too: a barrier release or queue
            # delivery can resume them mid-window, and they should come
            # back compiled instead of interpreting until the ceiling.
            runner = None
            if (not core.stop_fetch
                    and start >= resume.get(core.index, 0)):
                runner = self._runner_for(core)
                if core.ff_skip_from < 0:
                    eligible += 1
            runners.append(runner)
        if not eligible:
            return start
        done, stepped, delegated, attempted, elided = \
            self._bg_multi.run_window(start, ceiling, actives, runners,
                                      allow_elide, ctl_resume)
        for i, core in enumerate(actives):
            if runners[i] is None:
                continue
            if stepped[i] or delegated[i]:
                self._bg_note(core.index, True, done)
            elif attempted[i] and not elided[i] and not core.halted:
                # Attempted but never compiled a cycle, and not excused
                # by quiescence: this core is deopt-bound right now.
                self._bg_note(core.index, False, done)
        return done

    def _ff_flush(self) -> None:
        """Credit outstanding elision windows when run() stops iterating.

        The naive loop would have ticked every elided core through
        ``self.cycle - 1`` (pure stall ticks, by the elision proof); replay
        them into the counters so limit-exit and watchdog-raise paths
        leave stats identical to the naive scheduler's.
        """
        end = self.cycle - 1
        for core in self.cores:
            if core.ctx is not None and core.ff_skip_from >= 0:
                core.credit_fast_forward(core.ff_skip_from, end)
                core.ff_skip_from = -1
                core.ff_wake = 0

    def _check_watchdog(self) -> None:
        stuck = []
        for core in self.cores:
            if core.ctx is None or core.halted:
                continue
            progress = max(core.last_retire_cycle, self._ff_progress)
            if self.cycle - progress > self.config.deadlock_cycles:
                stuck.append(core)
        if stuck and self.obs.active:
            self.obs.emit(self.cycle, "machine", ev.WATCHDOG,
                          stuck=[core.index for core in stuck])
        if stuck and len(stuck) == sum(
                1 for c in self.cores if c.ctx is not None and not c.halted):
            # Credit pending elision windows first so post-mortem stats
            # match what the naive loop would have accumulated.
            self._ff_flush()
            details = ", ".join(
                f"core{c.index}@pc={c.ctx.pc}" for c in stuck)
            raise DeadlockError(f"no forward progress: {details}",
                                wait_states=self.wait_reports())

    def wait_reports(self) -> List[str]:
        """Per-core wait-state lines for deadlock post-mortems.

        One line per occupied core describing the ROB-head instruction it
        is blocked on plus the queue/barrier occupancy behind it (via
        :meth:`repro.cpu.ports.SplPort.wait_detail`).  Harmless to call at
        any paused cycle; used by :meth:`_check_watchdog` when raising
        :exc:`DeadlockError`.
        """
        return [core.wait_state() for core in self.cores
                if core.ctx is not None]

    # -- snapshot contract (DESIGN.md §8) ------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize every piece of mutable machine state to JSON-safe data.

        Captures state only — programs, bindings, ports, listeners and
        observability wiring are reconstructed by rebuilding a machine
        from the same :class:`SystemConfig` and re-running the workload's
        :meth:`load` before :meth:`restore`.  Snapshotting mid-run is
        valid at any paused cycle, including inside a fast-forward
        elision window (``run(options=RunOptions(pause_at=...))`` stops
        without flushing those windows).
        """
        context_index = {id(ctx): i for i, ctx in enumerate(self.contexts)}
        return {
            "cycle": self.cycle,
            "ff_progress": self._ff_progress,
            "ff_backoff": self._ff_backoff,
            "ff_resume_probe": self._ff_resume_probe,
            "stats": self.stats.snapshot_state(),
            "memory": self.memory.snapshot_state(),
            "mem_system": self.mem_system.snapshot_state(),
            "barrier_bus": self.barrier_bus.snapshot_state(),
            "controllers": [controller.snapshot_state()
                            for controller in self._controllers],
            "contexts": [ctx.snapshot_state() for ctx in self.contexts],
            "thread_core": [[tid, core] for tid, core
                            in sorted(self.thread_core.items())],
            "cores": [{
                "ctx": (context_index[id(core.ctx)]
                        if core.ctx is not None else None),
                "state": core.snapshot_state(),
            } for core in self.cores],
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this freshly prepared machine.

        Precondition: ``self`` was built from the same
        :class:`SystemConfig` and the same workload was loaded (so every
        program, SPL/comm binding and barrier registration exists); this
        method then overwrites all mutable state so that continuing the
        run is cycle-for-cycle identical to never having paused.
        """
        if len(state["cores"]) != len(self.cores):
            raise ConfigError(
                f"snapshot has {len(state['cores'])} cores, machine has "
                f"{len(self.cores)} — config mismatch")
        if len(state["contexts"]) != len(self.contexts):
            raise ConfigError(
                f"snapshot has {len(state['contexts'])} threads, machine "
                f"has {len(self.contexts)} — workload mismatch")
        if len(state["controllers"]) != len(self._controllers):
            raise ConfigError(
                "snapshot controller count does not match machine")
        self.cycle = state["cycle"]
        self._ff_progress = state["ff_progress"]
        self._ff_backoff = state["ff_backoff"]
        self._ff_resume_probe = state["ff_resume_probe"]
        self.stats.restore_state(state["stats"])
        self.memory.restore_state(state["memory"])
        self.mem_system.restore_state(state["mem_system"])
        self.barrier_bus.restore_state(state["barrier_bus"])
        for controller, controller_state in zip(self._controllers,
                                                state["controllers"]):
            controller.restore_state(controller_state)
        for ctx, ctx_state in zip(self.contexts, state["contexts"]):
            ctx.restore_state(ctx_state)
        self.thread_core = {tid: core
                            for tid, core in state["thread_core"]}
        for core, record in zip(self.cores, state["cores"]):
            # Re-point the context reference directly: attach() would
            # reset the very pipeline state being restored.  Port thread
            # mappings live in the controllers' own snapshots.
            index = record["ctx"]
            core.ctx = self.contexts[index] if index is not None else None
            core.restore_state(record["state"])

    # -- migration ----------------------------------------------------------------------------

    def migrate(self, thread_id: int, dest_core: int,
                max_cycles: int = 1_000_000) -> int:
        """Migrate a thread, modelling drain + 500-cycle switch (Sec V-A).

        Returns the cycle at which the thread resumes on ``dest_core``.
        """
        src_core = self.cores[self.thread_core[thread_id]]
        dest = self.cores[dest_core]
        if dest.ctx is not None:
            raise SimulationError(f"core {dest_core} is occupied")
        src_core.begin_drain()
        self.run(max_cycles=max_cycles, until=src_core.is_drained)
        if not src_core.is_drained():
            raise SimulationError("migration drain did not complete")
        ctx = src_core.detach()
        dest.attach(ctx, self.cycle, stall=self.config.migration_cycles)
        self.thread_core[thread_id] = dest_core
        self.stats.bump("migrations")
        if self.obs.active:
            self.obs.emit(self.cycle, "machine", ev.MIGRATE,
                          thread=thread_id, src=src_core.index,
                          dest=dest_core)
        return self.cycle + self.config.migration_cycles

    # -- observability ------------------------------------------------------------------------

    def finish_observation(self) -> None:
        """Flush open cycle spans and signal end-of-run to all sinks.

        Call once after the last :meth:`run` of an observed simulation,
        before reading trace/profile sinks.
        """
        for core in self.cores:
            core.flush_observation()
        self.obs.finish(self.cycle)

    # -- results --------------------------------------------------------------------------------

    def total_retired(self) -> int:
        return sum(ctx.retired_instructions for ctx in self.contexts)

    def finished(self) -> bool:
        return all(ctx.finished for ctx in self.contexts)
