"""The simulated heterogeneous CMP (Figure 2(a)).

A :class:`Machine` instantiates clusters of out-of-order cores over a
MESI-coherent memory system; SPL clusters additionally own a fabric
controller whose ports are attached to their cores.  The machine provides
the run loop, thread placement, migration (with the paper's 500-cycle
context-switch cost), and convenience wrappers for SPL configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, DeadlockError, SimulationError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController
from repro.core.function import SplFunction
from repro.core.tables import BarrierBus
from repro.cpu.context import ThreadContext
from repro.cpu.pipeline import OutOfOrderCore
from repro.mem.hierarchy import CoherentMemorySystem
from repro.mem.memory import MainMemory
from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.system.workload import Workload

_WATCHDOG_STRIDE = 4096


class ClusterInstance:
    """One cluster's cores plus (for SPL clusters) the fabric controller."""

    def __init__(self, index: int, kind: str, core_indices: List[int],
                 controller: Optional[SplClusterController]) -> None:
        self.index = index
        self.kind = kind
        self.core_indices = core_indices
        self.controller = controller


class Machine:
    """A runnable CMP instance."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.stats = Stats("machine")
        self.stats.declare("migrations")
        #: One observability bus for the whole machine; every simulated
        #: structure publishes into it (see repro.obs).  Zero-cost until a
        #: sink is attached with ``machine.obs.attach(...)``.
        self.obs = EventBus()
        self.memory = MainMemory()
        self.cycle = 0
        cache_configs = []
        for cluster in config.clusters:
            for _ in range(cluster.n_cores):
                cache_configs.append(
                    (cluster.core.l1i, cluster.core.l1d, cluster.core.l2))
        self.mem_system = CoherentMemorySystem(
            cache_configs, config, self.stats.child("mem"), obs=self.obs)
        bus_latency = 10
        for cluster in config.clusters:
            if cluster.kind == "spl":
                bus_latency = cluster.spl.barrier_bus_latency
                break
        self.barrier_bus = BarrierBus(bus_latency)
        self.cores: List[OutOfOrderCore] = []
        self.clusters: List[ClusterInstance] = []
        #: Everything with a ``tick(cycle)`` method: SPL controllers and any
        #: baseline communication hardware attached later.
        self._controllers: List = []
        core_index = 0
        for cluster_id, cluster in enumerate(config.clusters):
            indices = []
            for _ in range(cluster.n_cores):
                core = OutOfOrderCore(core_index, cluster.core,
                                      self.mem_system, self.memory,
                                      self.stats.child(f"cpu{core_index}"),
                                      obs=self.obs)
                self.cores.append(core)
                indices.append(core_index)
                core_index += 1
            controller = None
            if cluster.kind == "spl":
                controller = SplClusterController(
                    cluster_id, cluster.spl, self.barrier_bus,
                    self.stats.child(f"spl{cluster_id}"), obs=self.obs)
                for slot, index in enumerate(indices):
                    self.cores[index].spl_port = controller.ports[slot]
                self._controllers.append(controller)
            self.clusters.append(
                ClusterInstance(cluster_id, cluster.kind, indices, controller))
        self._cluster_by_core: Dict[int, ClusterInstance] = {
            index: cluster_instance
            for cluster_instance in self.clusters
            for index in cluster_instance.core_indices}
        self.contexts: List[ThreadContext] = []
        self.thread_core: Dict[int, int] = {}

    # -- lookup helpers -----------------------------------------------------------

    def cluster_of_core(self, core_index: int) -> ClusterInstance:
        cluster = self._cluster_by_core.get(core_index)
        if cluster is None:
            raise ConfigError(f"no cluster owns core {core_index}")
        return cluster

    def core_slot(self, core_index: int) -> Tuple[ClusterInstance, int]:
        cluster = self.cluster_of_core(core_index)
        return cluster, cluster.core_indices.index(core_index)

    # -- SPL configuration ----------------------------------------------------------

    def configure_spl(self, core_index: int, config_id: int,
                      function: SplFunction,
                      dest_thread: Optional[int] = None,
                      barrier_id: Optional[int] = None) -> None:
        """Bind ``config_id`` on the core's SPL cluster (runtime action)."""
        cluster, slot = self.core_slot(core_index)
        if cluster.controller is None:
            raise ConfigError(
                f"core {core_index} is not part of an SPL cluster")
        cluster.controller.configure(slot, config_id, function,
                                     dest_thread, barrier_id)

    def register_barrier(self, barrier_id: int, app_id: int,
                         thread_ids) -> None:
        self.barrier_bus.register(barrier_id, app_id, tuple(thread_ids))

    def set_partitions(self, core_index: int, row_counts: List[int],
                       core_assignment: Optional[List[int]] = None) -> None:
        cluster, _ = self.core_slot(core_index)
        if cluster.controller is None:
            raise ConfigError("not an SPL cluster")
        cluster.controller.set_partitions(row_counts, core_assignment)

    def add_controller(self, controller) -> None:
        """Register extra per-cycle hardware (baseline comm networks)."""
        self._controllers.append(controller)

    # -- workload loading --------------------------------------------------------------

    def load(self, workload: Workload) -> None:
        """Load memory, place threads, and run the workload's SPL setup."""
        self.memory.load_image(workload.image)
        for spec, core_index in zip(workload.threads, workload.placement):
            if not 0 <= core_index < len(self.cores):
                raise ConfigError(f"placement on missing core {core_index}")
            ctx = ThreadContext(spec)
            self.contexts.append(ctx)
            self.thread_core[ctx.thread_id] = core_index
            self.cores[core_index].attach(ctx, self.cycle)
        if workload.setup is not None:
            workload.setup(self)

    # -- execution ------------------------------------------------------------------------

    def run(self, max_cycles: int = 1_000_000_000,
            until: Optional[Callable[[], bool]] = None) -> int:
        """Advance until all threads finish (or ``until`` returns True).

        Returns the cycle count at stop.  Raises DeadlockError when no core
        retires anything for the configured watchdog window.
        """
        cores = self.cores
        controllers = self._controllers
        limit = self.cycle + max_cycles
        next_watchdog = self.cycle + _WATCHDOG_STRIDE
        while self.cycle < limit:
            if until is not None and until():
                return self.cycle
            running = False
            cycle = self.cycle
            for core in cores:
                if core.ctx is not None and not core.halted:
                    core.tick(cycle)
                    running = True
            if not running:
                return self.cycle
            for controller in controllers:
                controller.tick(cycle)
            self.cycle += 1
            if self.cycle >= next_watchdog:
                next_watchdog = self.cycle + _WATCHDOG_STRIDE
                self._check_watchdog()
        if until is not None and until():
            return self.cycle
        if any(core.active for core in cores):
            raise SimulationError(
                f"run exceeded {max_cycles} cycles without completing")
        return self.cycle

    def _check_watchdog(self) -> None:
        stuck = []
        for core in self.cores:
            if core.ctx is None or core.halted:
                continue
            if self.cycle - core.last_retire_cycle > \
                    self.config.deadlock_cycles:
                stuck.append(core)
        if stuck and self.obs.active:
            self.obs.emit(self.cycle, "machine", ev.WATCHDOG,
                          stuck=[core.index for core in stuck])
        if stuck and len(stuck) == sum(
                1 for c in self.cores if c.ctx is not None and not c.halted):
            details = ", ".join(
                f"core{c.index}@pc={c.ctx.pc}" for c in stuck)
            raise DeadlockError(f"no forward progress: {details}")

    # -- migration ----------------------------------------------------------------------------

    def migrate(self, thread_id: int, dest_core: int,
                max_cycles: int = 1_000_000) -> int:
        """Migrate a thread, modelling drain + 500-cycle switch (Sec V-A).

        Returns the cycle at which the thread resumes on ``dest_core``.
        """
        src_core = self.cores[self.thread_core[thread_id]]
        dest = self.cores[dest_core]
        if dest.ctx is not None:
            raise SimulationError(f"core {dest_core} is occupied")
        src_core.begin_drain()
        self.run(max_cycles=max_cycles, until=src_core.is_drained)
        if not src_core.is_drained():
            raise SimulationError("migration drain did not complete")
        ctx = src_core.detach()
        dest.attach(ctx, self.cycle, stall=self.config.migration_cycles)
        self.thread_core[thread_id] = dest_core
        self.stats.bump("migrations")
        if self.obs.active:
            self.obs.emit(self.cycle, "machine", ev.MIGRATE,
                          thread=thread_id, src=src_core.index,
                          dest=dest_core)
        return self.cycle + self.config.migration_cycles

    # -- observability ------------------------------------------------------------------------

    def finish_observation(self) -> None:
        """Flush open cycle spans and signal end-of-run to all sinks.

        Call once after the last :meth:`run` of an observed simulation,
        before reading trace/profile sinks.
        """
        for core in self.cores:
            core.flush_observation()
        self.obs.finish(self.cycle)

    # -- results --------------------------------------------------------------------------------

    def total_retired(self) -> int:
        return sum(ctx.retired_instructions for ctx in self.contexts)

    def finished(self) -> bool:
        return all(ctx.finished for ctx in self.contexts)
