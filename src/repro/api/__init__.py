"""The supported programmatic surface of the ReMAP reproduction.

``repro.api`` is the one entry point library users, the CLI, and the
HTTP job server all route through.  Five verbs cover the system:

* :func:`run` — simulate one declarative spec request synchronously
  (engine-cached, lint-gated) and return its
  :class:`~repro.experiments.runner.RunResult`;
* :func:`submit` — enqueue the same request as an async job and get a
  :class:`~repro.serve.jobs.Job` handle (state, heartbeats, wait);
* :func:`status` — a job's current :class:`~repro.serve.protocol.JobRecord`;
* :func:`sample` — a SimPoint-style warmup + measured-window run;
* :func:`lint` — static verification without simulating.

All of them delegate to a :class:`Session`, which owns one
:class:`~repro.experiments.engine.ExperimentEngine` (result + lint
caches), one multi-tenant :class:`~repro.serve.jobs.JobTable`, and one
sharded :class:`~repro.serve.pool.WorkerPool`.  The HTTP layer
(:mod:`repro.serve.server`) holds a Session and translates requests
into exactly these calls — it adds a wire codec, never semantics.

Stability: this module is the frozen surface (see DESIGN.md).  Legacy
call shapes live one release in :mod:`repro.api.compat` with
``DeprecationWarning``; everything else in the package is internal and
may change without notice.

Jobs take three fast paths before a worker process is ever spawned:

1. **Result cache** — a request whose content-addressed ``cache_key``
   is already stored completes instantly with ``cached: true``;
2. **Lint cache / pre-flight** — a request statically proven broken
   fails instantly with structured ``SpecError`` payloads;
3. otherwise it queues behind per-tenant quotas and the bounded queue
   (back-pressure), and a worker simulates it in heartbeat slices.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.experiments.engine import (ExperimentEngine, SpecError,
                                      SpecRequest, request)
from repro.experiments.runner import RunResult
from repro.serve.jobs import Job, JobTable
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (CANCELLED, DONE, FAILED, QUEUED, RUNNING,
                                  JobRecord, JobRequest)
from repro.serve.worker import HEARTBEAT_CYCLES

__all__ = [
    "Session", "cancel", "configure", "connect", "default_session",
    "lint", "request", "run", "sample", "status", "submit", "wait",
]


def as_request(req: Union[SpecRequest, str], variant: str = "",
               **params: Any) -> SpecRequest:
    """Coerce ``(bench, variant, params)`` or a ready request to one."""
    if isinstance(req, SpecRequest):
        if variant or params:
            raise TypeError(
                "pass either a SpecRequest or bench/variant/params, "
                "not both")
        return req
    return request(req, variant, **params)


class Session:
    """One service instance: engine + job table + worker pool.

    Thread-safe.  Synchronous verbs (:meth:`run`, :meth:`sample`,
    :meth:`lint`) go straight through the engine; :meth:`submit` admits
    an async job and a background dispatcher thread feeds the pool.
    """

    def __init__(self, engine: Optional[ExperimentEngine] = None, *,
                 shards: int = 2, queue_limit: int = 64,
                 tenant_quota: int = 16,
                 default_timeout_s: Optional[float] = 300.0,
                 heartbeat_cycles: int = HEARTBEAT_CYCLES) -> None:
        self.engine = engine if engine is not None else ExperimentEngine()
        self.table = JobTable(queue_limit=queue_limit,
                              tenant_quota=tenant_quota)
        self.pool = WorkerPool(shards=shards,
                               default_timeout_s=default_timeout_s,
                               heartbeat_cycles=heartbeat_cycles)
        self._dispatcher: Optional[threading.Thread] = None
        self._dispatcher_lock = threading.Lock()
        self._closed = False

    # -- the five verbs ----------------------------------------------------

    def run(self, req: Union[SpecRequest, str], variant: str = "",
            **params: Any) -> RunResult:
        """Simulate one request synchronously (cached, lint-gated)."""
        return self.engine.run(as_request(req, variant, **params))

    def submit(self, req: Union[SpecRequest, str], variant: str = "", *,
               tenant: str = "default", priority: int = 0,
               timeout_s: Optional[float] = None, **params: Any) -> Job:
        """Admit one async job; returns its live :class:`Job` handle.

        Raises :class:`~repro.serve.jobs.QueueFullError` /
        :class:`~repro.serve.jobs.QuotaError` /
        :class:`~repro.serve.jobs.DrainingError` on admission failure —
        the HTTP layer maps these to 429/429/503.
        """
        job_request = JobRequest(request=as_request(req, variant, **params),
                                 tenant=tenant, priority=priority,
                                 timeout_s=timeout_s)
        cache_key = job_request.request.cache_key()
        cached = self.engine.cache.load(cache_key) \
            if self.engine.cache else None
        if cached is not None:
            # Fast path: answered from the result cache, no queue slot,
            # no worker, straight to DONE.
            job = self.table.admit_resolved(job_request, cache_key)
            job.transition(DONE, cached=True, result=cached)
            self.engine.cache_hits += 1
            return job
        job = self.table.submit(job_request)
        self._ensure_dispatcher()
        return job

    def status(self, job_id: str) -> JobRecord:
        """The current record of one job (raises UnknownJobError)."""
        return self.table.get(job_id).record()

    def sample(self, req: Union[SpecRequest, str], variant: str = "", *,
               warmup: int = 20_000, sample: int = 50_000,
               snapshot_path: Optional[str] = None,
               compare_full: bool = False, **params: Any) -> Dict:
        """SimPoint-style warmup + measured-window run (see PR 6)."""
        from repro.experiments.sample import sampled_run
        return sampled_run(as_request(req, variant, **params),
                           warmup=warmup, sample=sample,
                           snapshot_path=snapshot_path,
                           compare_full=compare_full)

    def lint(self, benchmarks: Optional[Sequence[str]] = None) -> List:
        """Static diagnostics for the registry (or a subset of it)."""
        from repro.analysis import lint_registry
        benchmarks = list(benchmarks) if benchmarks else None
        return lint_registry(benchmarks,
                             include_library=not benchmarks)

    # -- job control -------------------------------------------------------

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> JobRecord:
        """Block until the job is terminal; returns its final record."""
        job = self.table.get(job_id)
        job.wait(timeout)
        return job.record()

    def cancel(self, job_id: str, detail: str = "cancelled") -> bool:
        """Cancel a queued or running job; False if already terminal."""
        job = self.table.get(job_id)
        if job.state == QUEUED and self.table.cancel_queued(job, detail):
            return True
        return self.pool.cancel(job_id, detail)

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        return [job.record() for job in self.table.jobs(tenant)]

    def stats(self) -> Dict:
        """Health snapshot: queue census, pool occupancy, engine counters."""
        return {
            "jobs": self.table.counts(),
            "running_workers": self.pool.running(),
            "shards": self.pool.shards,
            "queue_limit": self.table.queue_limit,
            "tenant_quota": self.table.tenant_quota,
            "draining": self.table.draining,
            "engine": {
                "cache_hits": self.engine.cache_hits,
                "simulated": self.engine.simulated,
                "failed": self.engine.failed,
            },
        }

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: admit nothing new, finish admitted jobs.

        Returns True once every admitted job reached a terminal state
        (False on timeout; jobs keep running).
        """
        self.table.drain()
        idle = self.table.wait_idle(timeout)
        if idle:
            self.pool.drain(timeout=1.0)
        return idle

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain and stop the dispatcher thread (for tests/embedders)."""
        self.drain(timeout)
        self._closed = True
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=2.0)

    # -- dispatcher --------------------------------------------------------

    def _ensure_dispatcher(self) -> None:
        with self._dispatcher_lock:
            if self._dispatcher is None or not self._dispatcher.is_alive():
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="repro-dispatcher",
                    daemon=True)
                self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while not self._closed:
            job = self.table.next_job(timeout=0.25)
            if job is None:
                if self.table.draining:
                    return
                continue
            self._dispatch_one(job)

    def _dispatch_one(self, job: Job) -> None:
        req = job.request.request
        # Pre-flight: statically broken specs fail without a worker
        # (verdicts are content-addressed and cached, like results).
        error = self.engine.preflight(req)
        if error is not None:
            if job.transition(FAILED, detail="rejected by pre-flight lint",
                              errors=(error.to_dict(),)):
                self.table.release(job)
            return
        import dataclasses
        self.pool.dispatch(
            job.job_id, dataclasses.asdict(req),
            on_message=lambda kind, payload: job.beat(payload),
            on_exit=lambda outcome: self._on_exit(job, outcome),
            timeout_s=job.request.timeout_s,
            on_start=lambda: job.transition(RUNNING))

    def _on_exit(self, job: Job, outcome) -> None:
        kind = outcome[0]
        if kind == "ok":
            record = outcome[1]
            if self.engine.cache:
                self.engine.cache.store(job.cache_key, job.request.request,
                                        record)
            self.engine.simulated += 1
            job.transition(DONE, result=record)
        elif kind == "error":
            self.engine.failed += 1
            job.transition(FAILED, detail=outcome[1].get("message", ""),
                           errors=(outcome[1],))
        elif kind == "timeout":
            self.engine.failed += 1
            payload = SpecError(
                job.request.request, "JobTimeout",
                f"job exceeded its {outcome[1]}s wall-clock budget",
                "").to_dict()
            job.transition(FAILED,
                           detail=f"timed out after {outcome[1]}s",
                           errors=(payload,))
        elif kind == "cancelled":
            job.transition(CANCELLED, detail=outcome[1])
        else:  # crashed
            self.engine.failed += 1
            payload = SpecError(
                job.request.request, "WorkerCrashed",
                f"worker process died with exit code {outcome[1]}",
                "").to_dict()
            job.transition(FAILED,
                           detail=f"worker exit code {outcome[1]}",
                           errors=(payload,))
        self.table.release(job)


# -- module-level default session ---------------------------------------------


_default_session: Optional[Session] = None
_default_lock = threading.Lock()


def default_session() -> Session:
    """The process-wide session behind the module-level verbs."""
    global _default_session
    with _default_lock:
        if _default_session is None:
            _default_session = Session()
        return _default_session


def configure(**kwargs: Any) -> Session:
    """Replace the default session (e.g. cache dir, shards) and return it.

    The previous default (if any) is closed first.
    """
    global _default_session
    with _default_lock:
        previous, _default_session = _default_session, None
    if previous is not None:
        previous.close(timeout=5.0)
    session = Session(**kwargs)
    with _default_lock:
        _default_session = session
    return session


def run(req: Union[SpecRequest, str], variant: str = "",
        **params: Any) -> RunResult:
    return default_session().run(req, variant, **params)


def submit(req: Union[SpecRequest, str], variant: str = "", *,
           tenant: str = "default", priority: int = 0,
           timeout_s: Optional[float] = None, **params: Any) -> Job:
    return default_session().submit(req, variant, tenant=tenant,
                                    priority=priority, timeout_s=timeout_s,
                                    **params)


def status(job_id: str) -> JobRecord:
    return default_session().status(job_id)


def wait(job_id: str, timeout: Optional[float] = None) -> JobRecord:
    return default_session().wait(job_id, timeout)


def cancel(job_id: str, detail: str = "cancelled") -> bool:
    return default_session().cancel(job_id, detail)


def sample(req: Union[SpecRequest, str], variant: str = "",
           **kwargs: Any) -> Dict:
    return default_session().sample(req, variant, **kwargs)


def lint(benchmarks: Optional[Sequence[str]] = None) -> List:
    return default_session().lint(benchmarks)


def connect(url: str):
    """A client for a remote ``repro serve`` instance.

    The returned :class:`~repro.serve.client.Client` speaks the same
    verbs (``submit`` / ``status`` / ``wait`` / ``cancel`` / ``watch``)
    over HTTP — the wire protocol is a codec over this module, so
    switching between in-process and remote execution is a one-line
    change.
    """
    from repro.serve.client import Client
    return Client(url)
