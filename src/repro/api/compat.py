"""Deprecated entry points, kept one release behind the ``repro.api`` facade.

Everything in this module raises :class:`DeprecationWarning` and then
delegates to the supported surface.  New code must not import it; each
stub's docstring names the replacement.  The module exists so that the
PR that removes a legacy call shape does not simultaneously break
downstream callers — they get one release of loud warnings instead.

Current residents (scheduled for deletion next release):

* :func:`execute` — the ``fast_forward=`` keyword shim that
  ``repro.experiments.runner.execute`` carried after the
  :class:`~repro.common.config.RunOptions` redesign.
* :func:`attach_tracer` — the one-call pipeline-tracer helper from
  before the observability bus; sinks attach through ``machine.obs``.
"""

from __future__ import annotations

import warnings
from typing import List, Optional


def _deprecated(message: str) -> None:
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def execute(spec, check: bool = True, model=None,
            fast_forward: Optional[bool] = None, *, options=None):
    """Deprecated: use ``repro.api.run`` or ``runner.execute(options=)``.

    Accepts the retired loose ``fast_forward`` keyword and folds it into
    a :class:`~repro.common.config.RunOptions` (mixing both styles is an
    error, exactly as the original shim behaved).
    """
    from repro.common.config import RunOptions
    from repro.common.errors import ConfigError
    from repro.experiments import runner
    _deprecated(
        "repro.api.compat.execute is deprecated; call "
        "repro.experiments.runner.execute(spec, options=RunOptions(...)) "
        "or the repro.api facade instead")
    if fast_forward is not None:
        if options is not None:
            raise ConfigError(
                "pass either options= or the deprecated fast_forward "
                "keyword, not both")
        options = RunOptions(fast_forward=fast_forward)
    return runner.execute(spec, check=check, model=model, options=options)


def attach_tracer(core, limit: int = 100_000,
                  stages: Optional[List[str]] = None):
    """Deprecated: attach a ``PipelineTracer`` to ``machine.obs`` directly.

    ::

        tracer = PipelineTracer(stages=["retire"])
        machine.obs.attach(tracer, kinds=tracer.kinds,
                           sources={f"cpu{core.index}"})
    """
    from repro.cpu.trace import PipelineTracer
    _deprecated(
        "repro.api.compat.attach_tracer is deprecated; attach a "
        "PipelineTracer to machine.obs instead")
    tracer = PipelineTracer(limit=limit, stages=stages)
    core.obs.attach(tracer, kinds=tracer.kinds,
                    sources={f"cpu{core.index}"})
    return tracer
