"""The observability event taxonomy.

Every simulated layer publishes structured :class:`Event` records into the
machine's :class:`~repro.obs.bus.EventBus`.  An event is ``(cycle, source,
kind, args)``:

* ``cycle``  — core-clock cycle the event refers to;
* ``source`` — the emitting structure, e.g. ``cpu3``, ``spl0``, ``mem1``,
  ``bus``, ``machine``;
* ``kind``   — one of the constants below;
* ``args``   — kind-specific payload (kept as the keyword arguments the
  publisher passed to :meth:`EventBus.emit`).

The taxonomy (see docs/OBSERVABILITY.md for payload details):

=================  ==========================================================
kind               meaning
=================  ==========================================================
``fetch``          cpu: one instruction entered the fetch queue
``dispatch``       cpu: one instruction renamed into the ROB
``issue``          cpu: one instruction issued to a functional unit
``complete``       cpu: one instruction wrote back
``retire``         cpu: one instruction retired in program order
``flush``          cpu: pipeline flush (mispredict / load replay) + redirect
``cycle_span``     cpu: a run of consecutive cycles with one stall class
``spl_stage``      core: ``spl_load`` wrote a word into the staging entry
``queue_push``     core: entry appended to an SPL input/output queue
``queue_pop``      core: entry consumed from an SPL input/output queue
``queue_full``     core: push refused — the queue is at capacity
``queue_stall``    core: fabric delivery blocked on a full output queue
``spl_issue``      core: a partition issued one fabric evaluation
``spl_deliver``    core: fabric results landed in output queues
``spl_reconfig``   core: a partition began streaming a new configuration
``partition_set``  core: the fabric was spatially repartitioned
``barrier_arrive`` core: a thread's barrier arrival reached the table
``barrier_release`` core: the Barrier Table released a generation
``dest_stall``     core: issue refused (absent destination / inflight cap)
``mem_miss``       mem: an access missed a private level (payload level)
``bus_wait``       mem: bus arbitration made a transaction wait
``migrate``        system: a thread moved between cores
``watchdog``       system: the deadlock watchdog saw stalled cores
``heartbeat``      system: periodic liveness sample (cycle, retired, IPC)
=================  ==========================================================
"""

from __future__ import annotations

from typing import Any, Dict

# -- cpu (fetch -> retire, flushes) -------------------------------------------
FETCH = "fetch"
DISPATCH = "dispatch"
ISSUE = "issue"
COMPLETE = "complete"
RETIRE = "retire"
FLUSH = "flush"
CYCLE_SPAN = "cycle_span"

#: Per-instruction pipeline kinds (the classic pipe-trace stream).  High
#: volume: sinks should subscribe to these explicitly.
PIPELINE_KINDS = frozenset(
    (FETCH, DISPATCH, ISSUE, COMPLETE, RETIRE, FLUSH))

# -- core (SPL fabric, queues, tables) ----------------------------------------
SPL_STAGE = "spl_stage"
QUEUE_PUSH = "queue_push"
QUEUE_POP = "queue_pop"
QUEUE_FULL = "queue_full"
QUEUE_STALL = "queue_stall"
SPL_ISSUE = "spl_issue"
SPL_DELIVER = "spl_deliver"
SPL_RECONFIG = "spl_reconfig"
PARTITION_SET = "partition_set"
BARRIER_ARRIVE = "barrier_arrive"
BARRIER_RELEASE = "barrier_release"
DEST_STALL = "dest_stall"

SPL_KINDS = frozenset(
    (SPL_STAGE, QUEUE_PUSH, QUEUE_POP, QUEUE_FULL, QUEUE_STALL, SPL_ISSUE,
     SPL_DELIVER, SPL_RECONFIG, PARTITION_SET, BARRIER_ARRIVE,
     BARRIER_RELEASE, DEST_STALL))

# -- mem ----------------------------------------------------------------------
MEM_MISS = "mem_miss"
BUS_WAIT = "bus_wait"

MEM_KINDS = frozenset((MEM_MISS, BUS_WAIT))

# -- system -------------------------------------------------------------------
MIGRATE = "migrate"
WATCHDOG = "watchdog"
#: Periodic liveness sample published by sliced runners (the job-server
#: worker); payload: ``retired``, ``ipc``.  Not emitted by Machine.run
#: itself — a driver that wants heartbeats publishes them between slices.
HEARTBEAT = "heartbeat"

SYSTEM_KINDS = frozenset((MIGRATE, WATCHDOG, HEARTBEAT))

# -- cycle-accounting classes (payload of ``cycle_span``) ---------------------
CLS_COMPUTE = "compute"
CLS_MEM = "mem_stall"
CLS_SPL_QUEUE = "spl_queue_stall"
CLS_BARRIER = "barrier_wait"
CLS_IDLE = "idle"

#: Every bucket of the cycle-accounting identity, in report order.
SPAN_CLASSES = (CLS_COMPUTE, CLS_SPL_QUEUE, CLS_BARRIER, CLS_MEM, CLS_IDLE)


class Event:
    """One published observability record."""

    __slots__ = ("cycle", "source", "kind", "args")

    def __init__(self, cycle: int, source: str, kind: str,
                 args: Dict[str, Any]) -> None:
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.args = args

    def get(self, key: str, default: Any = None) -> Any:
        return self.args.get(key, default)

    def __repr__(self) -> str:
        payload = ", ".join(f"{k}={v!r}" for k, v in self.args.items())
        return (f"Event({self.cycle}, {self.source}, {self.kind}"
                f"{', ' if payload else ''}{payload})")
