"""Chrome/Perfetto trace-event JSON export.

:class:`PerfettoSink` turns the event stream into the `Trace Event
Format`_ consumed by https://ui.perfetto.dev and ``chrome://tracing``:

* process ``cores`` — one thread (track) per core, showing the
  cycle-accounting spans (compute / stalls) as duration slices;
* process ``spl N`` — one thread per fabric partition (issue and
  reconfiguration slices), one thread per core port (staging, barrier
  arrivals, refusals), and one counter track per input/output queue
  (depth over time);
* process ``mem`` — one thread per private hierarchy (miss slices,
  length = miss latency) plus the shared snoop bus (arbitration waits);
* process ``machine`` — migrations and watchdog instants.

Timestamps are **core-clock cycles** written into the ``ts``/``dur``
microsecond fields, so one displayed microsecond is one cycle.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.common.config import SPL_CLOCK_RATIO
from repro.obs import events as ev
from repro.obs.bus import Sink
from repro.obs.events import Event

#: Everything the exporter draws.  Per-instruction pipeline kinds are
#: deliberately absent: core activity is rendered from the run-length
#: ``cycle_span`` stream, which keeps traces small and keeps the cores'
#: per-instruction fast path dark while exporting.
PERFETTO_KINDS = (frozenset((ev.CYCLE_SPAN,)) | ev.SPL_KINDS
                  | ev.MEM_KINDS | ev.SYSTEM_KINDS)

_PID_MACHINE = 0
_PID_CORES = 1
_PID_MEM = 2
_PID_SPL_BASE = 10

_TID_BUS = 99
_TID_PORT_BASE = 100


class PerfettoSink(Sink):
    """Collects events and renders a Chrome trace-event JSON document."""

    def __init__(self) -> None:
        self.trace_events: List[Dict[str, Any]] = []
        #: (pid, tid) -> thread (track) name.
        self._threads: Dict[tuple, str] = {}
        #: pid -> process name.
        self._processes: Dict[int, str] = {}
        self.finished_at: Optional[int] = None

    # -- bus interface -----------------------------------------------------

    def accept(self, event: Event) -> None:
        source = event.source
        if source.startswith("cpu"):
            self._accept_core(int(source[3:]), event)
        elif source.startswith("spl"):
            self._accept_spl(int(source[3:]), event)
        elif source.startswith("mem"):
            self._accept_mem(int(source[3:]), event)
        elif source == "bus":
            self._accept_bus(event)
        else:
            self._accept_machine(event)

    def on_finish(self, cycle: int) -> None:
        self.finished_at = cycle

    # -- per-source translation --------------------------------------------

    def _accept_core(self, index: int, event: Event) -> None:
        tid = index
        self._track(_PID_CORES, "cores", tid, f"core {index}")
        if event.kind == ev.CYCLE_SPAN:
            self._slice(_PID_CORES, tid, event.cycle, event.get("dur", 1),
                        event.get("cls", "?"))
        else:  # pipeline instants (flush), if a caller widens the filter
            self._instant(_PID_CORES, tid, event.cycle, event.kind,
                          dict(event.args))

    def _accept_spl(self, cluster: int, event: Event) -> None:
        pid = _PID_SPL_BASE + cluster
        name = f"spl {cluster}"
        kind = event.kind
        if kind in (ev.QUEUE_PUSH, ev.QUEUE_POP, ev.QUEUE_FULL):
            queue = event.get("queue", "?")
            self._processes.setdefault(pid, name)
            self.trace_events.append({
                "ph": "C", "pid": pid, "ts": event.cycle,
                "name": f"{queue} depth",
                "args": {"depth": event.get("depth", 0)}})
            if kind == ev.QUEUE_FULL:
                slot = int(queue[2:]) if queue[2:].isdigit() else 0
                tid = _TID_PORT_BASE + slot
                self._track(pid, name, tid, f"port {slot}")
                self._instant(pid, tid, event.cycle, "queue full",
                              {"queue": queue})
            return
        if kind in (ev.SPL_ISSUE, ev.SPL_RECONFIG):
            partition = event.get("partition", 0)
            tid = partition
            self._track(pid, name, tid, f"partition {partition}")
            if kind == ev.SPL_ISSUE:
                label = event.get("function", "fn")
                if event.get("barrier") is not None:
                    label = f"{label} (barrier {event.get('barrier')})"
                dur = event.get("latency", 1) * SPL_CLOCK_RATIO
            else:
                label = f"reconfig {event.get('function', '?')}"
                dur = event.get("fcycles", 1) * SPL_CLOCK_RATIO
            self._slice(pid, tid, event.cycle, dur, label,
                        {k: v for k, v in event.args.items()
                         if k != "function"})
            return
        if kind in (ev.SPL_STAGE, ev.BARRIER_ARRIVE, ev.DEST_STALL):
            slot = event.get("slot", 0)
            tid = _TID_PORT_BASE + slot
            self._track(pid, name, tid, f"port {slot}")
            self._instant(pid, tid, event.cycle, kind, dict(event.args))
            return
        # QUEUE_STALL / SPL_DELIVER / BARRIER_RELEASE / PARTITION_SET:
        # partition-level instants.
        tid = event.get("partition", 0)
        self._track(pid, name, tid, f"partition {tid}")
        self._instant(pid, tid, event.cycle, kind, dict(event.args))

    def _accept_mem(self, index: int, event: Event) -> None:
        tid = index
        self._track(_PID_MEM, "mem", tid, f"core {index} hierarchy")
        if event.kind == ev.MEM_MISS:
            dur = max(1, event.get("done", event.cycle + 1) - event.cycle)
            label = f"{event.get('level', '?')} miss"
            self._slice(_PID_MEM, tid, event.cycle, dur, label,
                        {"addr": event.get("addr"),
                         "write": event.get("write")})
        else:
            self._instant(_PID_MEM, tid, event.cycle, event.kind,
                          dict(event.args))

    def _accept_bus(self, event: Event) -> None:
        self._track(_PID_MEM, "mem", _TID_BUS, "snoop bus")
        if event.kind == ev.BUS_WAIT:
            self._slice(_PID_MEM, _TID_BUS, event.cycle,
                        max(1, event.get("wait", 1)), "bus wait",
                        {"grant": event.get("grant")})
        else:
            self._instant(_PID_MEM, _TID_BUS, event.cycle, event.kind,
                          dict(event.args))

    def _accept_machine(self, event: Event) -> None:
        self._track(_PID_MACHINE, "machine", 0, "system")
        self._instant(_PID_MACHINE, 0, event.cycle, event.kind,
                      dict(event.args))

    # -- trace-event helpers -----------------------------------------------

    def _track(self, pid: int, process: str, tid: int, thread: str) -> None:
        self._processes.setdefault(pid, process)
        self._threads.setdefault((pid, tid), thread)

    def _slice(self, pid: int, tid: int, ts: int, dur: int, name: str,
               args: Optional[Dict[str, Any]] = None) -> None:
        record: Dict[str, Any] = {"ph": "X", "pid": pid, "tid": tid,
                                  "ts": ts, "dur": dur, "name": name}
        if args:
            record["args"] = args
        self.trace_events.append(record)

    def _instant(self, pid: int, tid: int, ts: int, name: str,
                 args: Optional[Dict[str, Any]] = None) -> None:
        record: Dict[str, Any] = {"ph": "i", "pid": pid, "tid": tid,
                                  "ts": ts, "s": "t", "name": name}
        if args:
            record["args"] = args
        self.trace_events.append(record)

    # -- output ------------------------------------------------------------

    def metadata_events(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        for pid, process in sorted(self._processes.items()):
            records.append({"ph": "M", "pid": pid, "name": "process_name",
                            "args": {"name": process}})
            records.append({"ph": "M", "pid": pid, "name":
                            "process_sort_index", "args": {"sort_index": pid}})
        for (pid, tid), thread in sorted(self._threads.items()):
            records.append({"ph": "M", "pid": pid, "tid": tid,
                            "name": "thread_name", "args": {"name": thread}})
        return records

    def to_dict(self) -> Dict[str, Any]:
        body = sorted(self.trace_events,
                      key=lambda r: (r.get("ts", 0), r.get("pid", 0),
                                     r.get("tid", 0)))
        return {
            "traceEvents": self.metadata_events() + body,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "core cycles (1 us shown = 1 cycle)",
                "total_cycles": self.finished_at,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    def shape(self) -> Dict[str, Any]:
        """Structural inventory of the trace, for golden-file testing.

        Timing-independent: which processes/tracks/counters exist and
        which phase types each process emitted — stable across timing
        tweaks, sensitive to track-layout regressions.
        """
        processes: Dict[str, List[str]] = {}
        for (pid, _tid), thread in self._threads.items():
            processes.setdefault(self._processes[pid], []).append(thread)
        counters: Dict[str, List[str]] = {}
        phases: Dict[str, List[str]] = {}
        for record in self.trace_events:
            process = self._processes.get(record["pid"], "?")
            if record["ph"] == "C":
                bucket = counters.setdefault(process, [])
                if record["name"] not in bucket:
                    bucket.append(record["name"])
            bucket = phases.setdefault(process, [])
            if record["ph"] not in bucket:
                bucket.append(record["ph"])
        return {
            "processes": {name: sorted(tracks)
                          for name, tracks in sorted(processes.items())},
            "counters": {name: sorted(tracks)
                         for name, tracks in sorted(counters.items())},
            "phases": {name: sorted(kinds)
                       for name, kinds in sorted(phases.items())},
        }
