"""Plain-text rendering for observability output.

One renderer for everything textual the simulator reports: experiment
tables and series, run-level metric snapshots (see
:mod:`repro.obs.metrics`), and the cycle-accounting profile (see
:mod:`repro.obs.profile`).  ``system/report.py`` and
``experiments/report.py`` both delegate here, so the two report paths
can never drift apart.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.obs import events as ev


def format_table(rows: List[dict], columns: Sequence[str] = (),
                 floatfmt: str = "{:.2f}") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if not columns:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    else:
        columns = list(columns)
    rendered = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(floatfmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(column), *(len(r[i]) for r in rendered))
              for i, column in enumerate(columns)]
    lines = ["  ".join(column.ljust(width)
                       for column, width in zip(columns, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for cells in rendered:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def format_series(series: Dict, value_fmt: str = "{:.1f}") -> str:
    """Render a {name: [values...], "sizes": [...]} mapping as a table."""
    sizes = series["sizes"]
    rows = []
    for size_index, size in enumerate(sizes):
        row = {"size": size}
        for name, values in series.items():
            if name == "sizes":
                continue
            row[name] = values[size_index]
        rows.append(row)
    columns = ["size"] + [name for name in series if name != "sizes"]
    return format_table(rows, columns, floatfmt=value_fmt)


def geomean_row(rows: List[dict], label: str = "geomean") -> dict:
    """Geometric mean across numeric columns (for summary lines)."""
    if not rows:
        return {"bench": label}
    out = {"bench": label}
    keys = [key for key in rows[0] if isinstance(rows[0][key], float)]
    for key in keys:
        values = [row[key] for row in rows if key in row]
        positive = [1.0 + v / 100.0 if "pct" in key or "improvement" in key
                    else v for v in values]
        if any(v <= 0 for v in positive):
            continue
        mean = math.exp(sum(math.log(v) for v in positive) / len(positive))
        out[key] = (mean - 1.0) * 100.0 if "pct" in key or "improvement" \
            in key else mean
    return out


def render_snapshot(snapshot: Dict) -> str:
    """Render a metrics snapshot as the classic post-run machine report."""
    lines: List[str] = [f"machine: {snapshot['cycles']} cycles, "
                        f"{snapshot['retired']} instructions retired"]
    for summary in snapshot.get("cores", ()):
        line = (f"  core {summary['core']}: IPC {summary['ipc']:.3f}  "
                f"retired {summary['retired']}  "
                f"branch-acc {summary['branch_accuracy'] * 100:.1f}%")
        if "l1d_hit_rate" in summary:
            line += f"  L1D {summary['l1d_hit_rate'] * 100:.1f}%"
        lines.append(line)
    for summary in snapshot.get("fabrics", ()):
        if not summary["issues"]:
            continue
        lines.append(
            f"  spl {summary['cluster']}: {summary['issues']} issues  "
            f"util {summary['row_utilization'] * 100:.1f}%  "
            f"reconfigs {summary['reconfigurations']}  "
            f"barriers {summary['barrier_releases']}")
    bus = snapshot.get("bus")
    if bus and bus.get("transactions"):
        lines.append(f"  bus: {bus['transactions']:.0f} transactions, "
                     f"{bus['wait_cycles']:.0f} wait cycles")
    return "\n".join(lines)


def render_profile(accounting) -> str:
    """Render a :class:`~repro.obs.profile.CycleAccounting` breakdown."""
    rows = accounting.rows()
    lines = [f"cycle accounting over {accounting.total_cycles} cycles "
             f"(per core, all buckets sum to the total):"]
    table_rows = []
    for row in rows:
        table_row = {"core": row["core"]}
        total = row["total"] or 1
        for cls in ev.SPAN_CLASSES:
            table_row[cls] = row[cls]
            table_row[f"{cls} %"] = 100.0 * row[cls] / total
        table_row["total"] = row["total"]
        table_rows.append(table_row)
    columns = ["core"]
    for cls in ev.SPAN_CLASSES:
        columns += [cls, f"{cls} %"]
    columns.append("total")
    lines.append(format_table(table_rows, columns, floatfmt="{:.1f}"))
    return "\n".join(lines)
