"""Live-progress sink: forwards run heartbeats to an arbitrary callback.

:class:`ProgressSink` is the obs-bus end of the job server's streaming
progress feed.  A sliced runner (``repro.serve.worker``) publishes
``heartbeat`` events into the machine's bus between ``pause_at`` slices;
this sink subscribes to exactly that kind and hands each sample to a
callback — in the server, the callback writes the sample down a pipe to
the parent process, which fans it out to Server-Sent-Events
subscribers.

Subscribing only to :data:`~repro.obs.events.HEARTBEAT` keeps
``pipeline_active`` False, so attaching a ProgressSink never disables
the fast-forward scheduler and never changes simulated cycle counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.obs import events as ev
from repro.obs.bus import Sink
from repro.obs.events import Event


class ProgressSink(Sink):
    """Forward heartbeat samples to ``on_sample`` as JSON-safe dicts.

    Each sample is ``{"cycle", "retired", "ipc"}``; :meth:`on_finish`
    invokes ``on_finish_cb`` (when given) with the final cycle so
    consumers can close their streams.
    """

    KINDS = frozenset((ev.HEARTBEAT,))

    def __init__(self, on_sample: Callable[[Dict], None],
                 on_finish_cb: Callable[[int], None] = None) -> None:
        self.on_sample = on_sample
        self.on_finish_cb = on_finish_cb
        #: Samples seen, newest last (bounded consumers may ignore this).
        self.samples: List[Dict] = []

    def accept(self, event: Event) -> None:
        sample = {
            "cycle": event.cycle,
            "retired": event.get("retired", 0),
            "ipc": event.get("ipc", 0.0),
        }
        self.samples.append(sample)
        self.on_sample(sample)

    def on_finish(self, cycle: int) -> None:
        if self.on_finish_cb is not None:
            self.on_finish_cb(cycle)


def publish_heartbeat(machine) -> Dict:
    """Publish one heartbeat event for ``machine``'s current state.

    Returns the sample dict (also what any attached
    :class:`ProgressSink` receives).  A no-op returning the sample when
    nothing listens, matching the bus's zero-cost contract.
    """
    retired = machine.total_retired()
    cycle = machine.cycle
    sample = {"cycle": cycle, "retired": retired,
              "ipc": (retired / cycle) if cycle else 0.0}
    if machine.obs.active:
        machine.obs.emit(cycle, "machine", ev.HEARTBEAT,
                         retired=retired, ipc=sample["ipc"])
    return sample
