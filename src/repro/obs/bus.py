"""The event bus observability backbone.

A :class:`Machine` owns one :class:`EventBus`; every simulated structure
(cores, SPL cluster controllers, memory hierarchy, bus, the machine
itself) holds a reference and publishes :class:`~repro.obs.events.Event`
records into it.

The bus is **zero-cost when nothing listens**: publishers guard every
emission with ``if self.obs.active:`` where ``active`` is a plain bool
attribute, so an unobserved run performs one attribute read and a branch
per would-be event — no ``Event`` objects, no dict payloads, no calls.

Sinks subscribe with optional ``kinds``/``sources`` filters.  The filter
closure is compiled once per (sink, filter) pair at attach time so
dispatch is a short loop over predicate+accept pairs.
"""

from __future__ import annotations

from typing import (Any, Callable, FrozenSet, Iterable, List, Optional,
                    Tuple)

from repro.obs.events import PIPELINE_KINDS, Event


class Sink:
    """Base class for event consumers.

    Subclasses override :meth:`accept`; :meth:`on_finish` is called once
    when the producing machine stops, with the final cycle count.
    """

    def accept(self, event: Event) -> None:
        raise NotImplementedError

    def on_finish(self, cycle: int) -> None:
        """Hook invoked when the run ends (flush open spans, etc.)."""


class EventBus:
    """Dispatches published events to attached sinks.

    ``active`` is the publisher-side fast-path guard: it is True iff at
    least one sink is attached.  Publishers must check it before building
    event payloads.  ``pipeline_active`` additionally gates the
    per-instruction cpu kinds (fetch/dispatch/issue/complete/retire/
    flush), which are orders of magnitude more frequent than everything
    else: it is True only when some sink's filter can match them, so a
    Perfetto or profiler sink does not force per-instruction payloads.
    """

    __slots__ = ("active", "pipeline_active", "_routes")

    def __init__(self) -> None:
        self.active = False
        self.pipeline_active = False
        # (sink, kinds-or-None, sources-or-None) triples.
        self._routes: List[Tuple[Sink, Optional[FrozenSet[str]],
                                 Optional[FrozenSet[str]]]] = []

    # -- subscription ------------------------------------------------------

    def attach(self, sink: Sink,
               kinds: Optional[Iterable[str]] = None,
               sources: Optional[Iterable[str]] = None) -> Sink:
        """Subscribe ``sink``; optionally filter by event kind/source.

        ``kinds``/``sources`` of ``None`` mean "everything".  Returns the
        sink for chaining.
        """
        kind_set = None if kinds is None else frozenset(kinds)
        source_set = None if sources is None else frozenset(sources)
        self._routes.append((sink, kind_set, source_set))
        self._recompute()
        return sink

    def detach(self, sink: Sink) -> None:
        self._routes = [route for route in self._routes
                        if route[0] is not sink]
        self._recompute()

    def _recompute(self) -> None:
        self.active = bool(self._routes)
        self.pipeline_active = any(
            kinds is None or kinds & PIPELINE_KINDS
            for _sink, kinds, _sources in self._routes)

    @property
    def sinks(self) -> List[Sink]:
        return [route[0] for route in self._routes]

    # -- publication -------------------------------------------------------

    def emit(self, cycle: int, source: str, kind: str,
             **args: Any) -> None:
        """Publish one event.

        Callers are expected to have already checked :attr:`active`; the
        method still works (as a no-op) if they did not.
        """
        if not self.active:
            return
        self.publish(Event(cycle, source, kind, args))

    def publish(self, event: Event) -> None:
        for sink, kinds, sources in self._routes:
            if kinds is not None and event.kind not in kinds:
                continue
            if sources is not None and event.source not in sources:
                continue
            sink.accept(event)

    def finish(self, cycle: int) -> None:
        """Signal end-of-run to every sink (in attach order)."""
        for sink, _kinds, _sources in self._routes:
            sink.on_finish(cycle)


class CallbackSink(Sink):
    """Adapter wrapping a plain callable as a sink (handy in tests)."""

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self.fn = fn

    def accept(self, event: Event) -> None:
        self.fn(event)


class CollectorSink(Sink):
    """Buffers every accepted event; the simplest useful sink."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.finished_at: Optional[int] = None

    def accept(self, event: Event) -> None:
        self.events.append(event)

    def on_finish(self, cycle: int) -> None:
        self.finished_at = cycle

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]
