"""Simulator-wide observability: event bus, trace export, profiling.

The subsystem has three layers (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.events` / :mod:`repro.obs.bus` — the structured event
  bus every simulated layer publishes into, zero-cost when no sink is
  attached;
* :mod:`repro.obs.perfetto` / :mod:`repro.obs.profile` — sinks: the
  Chrome/Perfetto trace-event exporter and the cycle-accounting
  profiler;
* :mod:`repro.obs.metrics` / :mod:`repro.obs.render` — run-level metric
  snapshots with a versioned schema, and the one shared text renderer.
"""

from repro.obs.bus import CallbackSink, CollectorSink, EventBus, Sink
from repro.obs.events import Event
from repro.obs.progress import ProgressSink, publish_heartbeat

__all__ = [
    "CallbackSink",
    "CollectorSink",
    "Event",
    "EventBus",
    "ProgressSink",
    "Sink",
    "publish_heartbeat",
]
