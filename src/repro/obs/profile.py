"""Cycle-accounting profiler: where did every core-cycle go?

:class:`ProfilerSink` consumes the run-length ``cycle_span`` stream the
cores publish and attributes every core-cycle of the run to exactly one
bucket: ``compute``, ``spl_queue_stall``, ``barrier_wait``, ``mem_stall``,
or ``idle`` (cycles the core did not tick — unattached, migrating, or
finished early).

The defining property is the **accounting identity**: for every core,

    compute + spl_queue_stall + barrier_wait + mem_stall + idle
        == total machine cycles

:meth:`CycleAccounting.verify` enforces it and raises on any leak, so a
new stall source that forgets to classify shows up as a hard error, not
a quietly-wrong report.

The identity holds under the fast-forward scheduler too: skipped windows
are bulk-credited into the same ``cycle_span`` stream (one event covering
``dur`` cycles rather than ``dur`` events of one cycle), so the per-class
totals — and therefore this sink's buckets — are identical to a naive
per-cycle run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.obs import events as ev
from repro.obs.bus import Sink
from repro.obs.events import Event


class CycleAccounting:
    """Finished per-core cycle attribution for one run."""

    def __init__(self, total_cycles: int,
                 ticked: Dict[str, Dict[str, int]]) -> None:
        self.total_cycles = total_cycles
        #: source ("cpu0") -> {span class -> cycles}; no idle yet.
        self._ticked = ticked

    def sources(self) -> List[str]:
        return sorted(self._ticked, key=lambda s: (len(s), s))

    def row(self, source: str) -> Dict[str, int]:
        """All five buckets for one core; they sum to ``total_cycles``."""
        spans = self._ticked.get(source, {})
        row = {cls: spans.get(cls, 0) for cls in ev.SPAN_CLASSES}
        ticked = sum(spans.values())
        row[ev.CLS_IDLE] = self.total_cycles - ticked
        return row

    def rows(self, sources: Optional[List[str]] = None) -> List[Dict]:
        out = []
        for source in sources if sources is not None else self.sources():
            row: Dict = {"core": source}
            row.update(self.row(source))
            row["total"] = self.total_cycles
            out.append(row)
        return out

    def verify(self, sources: Optional[List[str]] = None) -> None:
        """Enforce the accounting identity for every core."""
        for source in sources if sources is not None else self.sources():
            row = self.row(source)
            if row[ev.CLS_IDLE] < 0:
                raise SimulationError(
                    f"cycle accounting leak on {source}: classified "
                    f"{self.total_cycles - row[ev.CLS_IDLE]} cycles of "
                    f"{self.total_cycles} (double-counted spans)")
            if sum(row.values()) != self.total_cycles:
                raise SimulationError(
                    f"cycle accounting identity violated on {source}: "
                    f"{sum(row.values())} != {self.total_cycles}")


class ProfilerSink(Sink):
    """Accumulates ``cycle_span`` events into per-core buckets.

    Attach with ``machine.obs.attach(sink, kinds=ProfilerSink.KINDS)``;
    after the run call ``machine.finish_observation()`` (which flushes
    each core's open span), then :meth:`accounting`.
    """

    KINDS = frozenset((ev.CYCLE_SPAN,))

    def __init__(self) -> None:
        self.spans: Dict[str, Dict[str, int]] = {}
        self.finished_at: Optional[int] = None

    def accept(self, event: Event) -> None:
        if event.kind != ev.CYCLE_SPAN:
            return
        buckets = self.spans.setdefault(event.source, {})
        cls = event.get("cls", ev.CLS_COMPUTE)
        buckets[cls] = buckets.get(cls, 0) + event.get("dur", 1)

    def on_finish(self, cycle: int) -> None:
        self.finished_at = cycle

    def accounting(self, total_cycles: Optional[int] = None,
                   verify: bool = True) -> CycleAccounting:
        total = total_cycles if total_cycles is not None \
            else (self.finished_at or 0)
        accounting = CycleAccounting(total, self.spans)
        if verify:
            accounting.verify()
        return accounting
