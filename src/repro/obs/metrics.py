"""Run-level metric snapshots with a versioned schema.

A *snapshot* is a plain JSON-serializable dict summarizing one run: the
quantities an architect reads first (per-core IPC, branch accuracy, cache
hit rates; per-fabric issue counts and utilization; bus pressure), all
derived from the flattened counter mapping that :class:`RunResult`
already persists.  Both the post-run ``machine_report`` and the
experiment engine's cached records use this one serializer, so a result
served from the cache retains exactly the telemetry a fresh run shows.

``schema`` is :data:`METRICS_SCHEMA_VERSION`; bump it whenever a field
changes meaning, and the result cache (which keys on the enclosing
``RESULT_SCHEMA_VERSION``) stops serving stale snapshots.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

#: Bump when any snapshot field changes meaning.
METRICS_SCHEMA_VERSION = 1

_CPU_SCOPE = re.compile(r"\.cpu(\d+)\.")
_SPL_SCOPE = re.compile(r"\.spl(\d+)\.")


def core_summary(flat: Mapping[str, float], index: int,
                 prefix: str = "machine") -> Optional[Dict]:
    """IPC, branch accuracy, and hit rates for one core, or None if the
    core never ticked."""
    cpu = f"{prefix}.cpu{index}."

    def get(key: str) -> float:
        return flat.get(cpu + key, 0.0)

    cycles = get("cycles")
    if not cycles:
        return None
    branches = get("branches_resolved")
    summary = {
        "core": index,
        "cycles": int(cycles),
        "retired": int(get("retired")),
        "ipc": get("retired") / cycles,
        "branch_accuracy": (1 - get("mispredicts") / branches
                            if branches else 1.0),
        "load_replays": int(get("load_replays")),
    }
    port = f"{prefix}.mem.core{index}."
    if any(key.startswith(port) for key in flat):
        l1d_hits = flat.get(port + "l1d_hits", 0.0)
        l1d_misses = flat.get(port + "l1d_misses", 0.0)
        l1_accesses = l1d_hits + l1d_misses
        summary["l1d_hit_rate"] = (l1d_hits / l1_accesses
                                   if l1_accesses else 1.0)
        l2_hits = flat.get(port + "l2_hits", 0.0)
        l2_accesses = l2_hits + flat.get(port + "l2_misses", 0.0)
        summary["l2_hit_rate"] = (l2_hits / l2_accesses
                                  if l2_accesses else 1.0)
    return summary


def fabric_summary(flat: Mapping[str, float], cluster_id: int,
                   cycles: int, rows: int,
                   prefix: str = "machine") -> Dict:
    """Issue counts, utilization, and stall profile for one SPL cluster."""
    spl = f"{prefix}.spl{cluster_id}."

    def get(key: str) -> float:
        return flat.get(spl + key, 0.0)

    fabric_cycles = max(1, cycles // 4)
    return {
        "cluster": cluster_id,
        "issues": int(get("issues")),
        "barrier_releases": int(get("barrier_releases")),
        "reconfigurations": int(get("reconfigurations")),
        "rows_evaluated": int(get("rows_evaluated")),
        "row_utilization": get("rows_evaluated") / (fabric_cycles * rows),
        "output_queue_stalls": int(get("output_queue_stalls")),
        "dest_absent_stalls": int(get("dest_absent_stalls")),
    }


def bus_summary(flat: Mapping[str, float],
                prefix: str = "machine") -> Dict:
    bus = f"{prefix}.mem.bus."
    return {
        "transactions": int(flat.get(bus + "transactions", 0.0)),
        "wait_cycles": int(flat.get(bus + "wait_cycles", 0.0)),
    }


def snapshot_from_machine(machine) -> Dict:
    """Build the run snapshot for a just-simulated machine."""
    flat = machine.stats.as_dict()
    cores = []
    for index in range(len(machine.cores)):
        summary = core_summary(flat, index)
        if summary is not None:
            cores.append(summary)
    fabrics = []
    for cluster in machine.clusters:
        if cluster.controller is not None:
            fabrics.append(fabric_summary(
                flat, cluster.index, machine.cycle,
                cluster.controller.config.rows))
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "cycles": machine.cycle,
        "retired": machine.total_retired(),
        "cores": cores,
        "fabrics": fabrics,
        "bus": bus_summary(flat),
        "migrations": int(flat.get("machine.migrations", 0.0)),
    }


def snapshot_from_counters(flat: Mapping[str, float], cycles: int,
                           retired: Optional[int] = None,
                           prefix: str = "machine") -> Dict:
    """Rebuild a snapshot from flattened counters (cached results).

    Core/fabric scopes are discovered from the key paths; fabric rows
    fall back to the default SPL configuration when the counters cannot
    tell (ablations that resize the fabric should keep the live
    snapshot taken at execute time instead).
    """
    from repro.common.config import spl_config
    core_ids = sorted({int(m.group(1))
                       for key in flat for m in [_CPU_SCOPE.search(key)]
                       if m is not None})
    spl_ids = sorted({int(m.group(1))
                      for key in flat for m in [_SPL_SCOPE.search(key)]
                      if m is not None})
    cores = []
    for index in core_ids:
        summary = core_summary(flat, index, prefix=prefix)
        if summary is not None:
            cores.append(summary)
    rows = spl_config().rows
    fabrics = [fabric_summary(flat, cid, cycles, rows, prefix=prefix)
               for cid in spl_ids]
    if retired is None:
        retired = int(sum(flat.get(f"{prefix}.cpu{i}.retired", 0.0)
                          for i in core_ids))
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "cycles": cycles,
        "retired": retired,
        "cores": cores,
        "fabrics": fabrics,
        "bus": bus_summary(flat, prefix=prefix),
        "migrations": int(flat.get(f"{prefix}.migrations", 0.0)),
    }


def _register_metrics_codec() -> None:
    from repro.common.serialize import check_schema, register_codec

    def decode(payload: Dict) -> Dict:
        check_schema("metrics-snapshot", payload, METRICS_SCHEMA_VERSION)
        return dict(payload)

    register_codec("metrics-snapshot", METRICS_SCHEMA_VERSION,
                   dict, decode)


_register_metrics_codec()


def merge_lists(snapshots: List[Dict]) -> Dict:
    """Aggregate snapshots of repeated runs (sums cycles, keeps schema)."""
    if not snapshots:
        return {"schema": METRICS_SCHEMA_VERSION, "cycles": 0,
                "retired": 0, "cores": [], "fabrics": [],
                "bus": {"transactions": 0, "wait_cycles": 0},
                "migrations": 0}
    out = dict(snapshots[0])
    for snap in snapshots[1:]:
        out["cycles"] += snap.get("cycles", 0)
        out["retired"] += snap.get("retired", 0)
        out["migrations"] += snap.get("migrations", 0)
        out["bus"] = {
            key: out["bus"].get(key, 0) + snap.get("bus", {}).get(key, 0)
            for key in ("transactions", "wait_cycles")}
    return out
