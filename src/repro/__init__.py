"""ReMAP: A Reconfigurable Heterogeneous Multicore Architecture.

A full-system reproduction of Watkins & Albonesi, MICRO 2010: a
cycle-level heterogeneous CMP simulator with a shared Specialized
Programmable Logic (SPL) fabric supporting individual computation,
fine-grained interthread communication with in-flight computation, and
barrier synchronization with integrated global functions.
"""

__version__ = "1.0.0"

from repro.common.config import (remap_system, ooo1_config, ooo2_config,
                                 spl_config, SystemConfig)
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import (SplFunction, barrier_reduce_function,
                                 barrier_token_function, identity_function)
from repro.isa import Asm, MemoryImage, Program, ThreadSpec
from repro.power.model import EnergyModel
from repro.system.machine import Machine
from repro.system.workload import Workload

__all__ = [
    "remap_system", "ooo1_config", "ooo2_config", "spl_config",
    "SystemConfig", "Dfg", "DfgOp", "SplFunction",
    "barrier_reduce_function", "barrier_token_function",
    "identity_function", "Asm", "MemoryImage", "Program", "ThreadSpec",
    "EnergyModel", "Machine", "Workload",
]
