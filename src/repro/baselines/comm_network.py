"""Idealized dedicated communication/barrier hardware (the baselines).

Section V-A compares ReMAP against clusters of OOO2 cores with a dedicated
fine-grained communication network "similar to previous proposals [7],[24]"
assumed to cost **zero area**; Section V-C2 against clusters of OOO1 cores
with a dedicated barrier network [2],[27].  This module provides both as a
drop-in :class:`repro.cpu.ports.SplPort` implementation, so the *same
programs* (using ``spl_load``/``spl_init``/``spl_recv``) run on ReMAP and
on the baselines — only the backing hardware changes:

* point-to-point sends deliver the staged words to the destination thread's
  output queue after a fixed (small, idealized) latency, with no
  computation;
* barrier configurations release all participants a fixed latency after
  the last arrival, delivering a token (sync only — any global function
  must be computed in software, as in Figure 7(b)).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SplError
from repro.common.stats import Stats
from repro.cpu.ports import SplPort
from repro.core.queues import OutputQueue, StagingEntry

#: Idealized network latencies (core cycles).
SEND_LATENCY = 4
BARRIER_RELEASE_LATENCY = 4
QUEUE_DEPTH = 32


class CommBinding:
    """Meaning of one config id on the dedicated network."""

    __slots__ = ("dest_thread", "barrier_id")

    def __init__(self, dest_thread: Optional[int] = None,
                 barrier_id: Optional[int] = None) -> None:
        if (dest_thread is None) == (barrier_id is None):
            raise ConfigError("binding must be a send or a barrier")
        self.dest_thread = dest_thread
        self.barrier_id = barrier_id


class CommPort(SplPort):
    """Core-side port into the dedicated network."""

    def __init__(self, controller: "DedicatedCommController",
                 slot: int) -> None:
        self.controller = controller
        self.slot = slot

    def stage_load(self, value: int, offset: int, cycle: int,
                   ready: int = 0) -> bool:
        return self.controller.stage_load(self.slot, value, offset, cycle,
                                          ready)

    def init(self, config_id: int, cycle: int) -> bool:
        return self.controller.init(self.slot, config_id, cycle)

    def recv(self, cycle: int) -> Optional[int]:
        return self.controller.recv(self.slot, cycle)

    def output_pending(self) -> bool:
        return not self.controller.output_queues[self.slot].empty

    def can_switch_out(self) -> bool:
        return self.controller.can_switch_out(self.slot)

    def on_context_change(self, thread_id: Optional[int],
                          app_id: int) -> None:
        self.controller.set_thread(self.slot, thread_id)

    def stall_kind(self) -> str:
        return self.controller.stall_kind(self.slot)

    def wait_detail(self) -> str:
        """Human-readable description of what this slot is blocked on."""
        controller = self.controller
        oq = controller.output_queues[self.slot]
        parts = [f"comm network slot {self.slot}",
                 f"output queue {len(oq)} words",
                 f"{controller.in_flight[self.slot]} deliveries in flight"]
        thread_id = controller.threads[self.slot]
        if thread_id is not None:
            for barrier_id, (participants, arrived) in \
                    sorted(controller.barriers.items()):
                if thread_id in arrived:
                    parts.append(
                        f"arrived at barrier {barrier_id} "
                        f"({len(arrived)}/{len(participants)} there)")
        return ", ".join(parts)


class DedicatedCommController:
    """Hardware queues + barrier network shared by one cluster's cores."""

    STAT_KEYS = (
        "stage_loads", "dest_absent_stalls", "sends", "barrier_arrivals",
        "barrier_releases", "output_queue_stalls", "deliveries")

    def __init__(self, n_cores: int, stats: Stats,
                 send_latency: int = SEND_LATENCY,
                 barrier_latency: int = BARRIER_RELEASE_LATENCY) -> None:
        self.n_cores = n_cores
        self.stats = stats
        stats.declare(*self.STAT_KEYS)
        self.send_latency = send_latency
        self.barrier_latency = barrier_latency
        self.staging = [StagingEntry() for _ in range(n_cores)]
        self.output_queues = [OutputQueue(QUEUE_DEPTH)
                              for _ in range(n_cores)]
        self.ports = [CommPort(self, slot) for slot in range(n_cores)]
        self.bindings: Dict[Tuple[int, int], CommBinding] = {}
        self.threads: List[Optional[int]] = [None] * n_cores
        self.in_flight = [0] * n_cores
        #: (deliver_cycle, dest_slot, words)
        self.pending: Deque[Tuple[int, int, List[int]]] = deque()
        #: ``wake(slot)`` callback installed by :func:`attach_network`:
        #: fired per delivery so the fast-forward scheduler can wake an
        #: elided core (see DESIGN.md).
        self.wake_cb = None
        #: barrier id -> (participant thread ids, arrived thread ids)
        self.barriers: Dict[int, Tuple[Tuple[int, ...], List[int]]] = {}

    # -- configuration --------------------------------------------------------

    def configure_send(self, slot: int, config_id: int,
                       dest_thread: int) -> None:
        self.bindings[(slot, config_id)] = CommBinding(dest_thread=dest_thread)

    def configure_barrier(self, slot: int, config_id: int,
                          barrier_id: int) -> None:
        self.bindings[(slot, config_id)] = CommBinding(barrier_id=barrier_id)

    def register_barrier(self, barrier_id: int, thread_ids) -> None:
        self.barriers[barrier_id] = (tuple(thread_ids), [])

    def registered_participants(self,
                                barrier_id: int) -> Optional[Tuple[int, ...]]:
        """Participants of ``barrier_id``, or ``None`` when unregistered
        (static-verifier introspection)."""
        entry = self.barriers.get(barrier_id)
        return None if entry is None else entry[0]

    def resident_threads(self) -> Tuple[int, ...]:
        """Thread ids currently attached to network slots, sorted."""
        return tuple(sorted(thread for thread in self.threads
                            if thread is not None))

    def slot_of(self, thread_id: int) -> Optional[int]:
        """The network slot hosting ``thread_id``, or ``None``.

        Public introspection twin of the send path's residency lookup:
        a send whose destination resolves to ``None`` stalls forever."""
        return self._slot_of(thread_id)

    def set_thread(self, slot: int, thread_id: Optional[int]) -> None:
        if thread_id is None and self.in_flight[slot]:
            raise SplError("switch-out with network data in flight")
        self.threads[slot] = thread_id

    # -- port operations ----------------------------------------------------------

    def stage_load(self, slot: int, value: int, offset: int,
                   cycle: int, ready: int = 0) -> bool:
        self.staging[slot].write_word(value, offset, ready)
        self.stats.bump("stage_loads")
        return True

    def init(self, slot: int, config_id: int, cycle: int) -> bool:
        binding = self.bindings.get((slot, config_id))
        if binding is None:
            raise SplError(f"comm network: unbound config {config_id} "
                           f"on slot {slot}")
        if binding.barrier_id is not None:
            return self._barrier_arrive(slot, binding.barrier_id, cycle)
        dest_slot = self._slot_of(binding.dest_thread)
        if dest_slot is None:
            self.stats.bump("dest_absent_stalls")
            return False
        data, valid, ready = self.staging[slot].seal()
        words = _staged_words(data, valid)
        self.in_flight[dest_slot] += 1
        self.pending.append(
            (max(cycle, ready) + self.send_latency, dest_slot, words))
        self.stats.bump("sends")
        return True

    def _barrier_arrive(self, slot: int, barrier_id: int,
                        cycle: int) -> bool:
        participants, arrived = self.barriers[barrier_id]
        thread_id = self.threads[slot]
        if thread_id not in participants:
            raise SplError(f"thread {thread_id} not in barrier {barrier_id}")
        self.staging[slot].seal()  # barrier token input is discarded
        arrived.append(thread_id)
        self.stats.bump("barrier_arrivals")
        if len(arrived) >= len(participants):
            for participant in participants:
                dest = self._slot_of(participant)
                if dest is None:
                    raise SplError("barrier participant not resident")
                self.in_flight[dest] += 1
                self.pending.append(
                    (cycle + self.barrier_latency, dest, [1]))
                if self.wake_cb is not None:
                    # The release flips stall_kind from "barrier" to
                    # "queue": wake any elided waiter so its remaining
                    # stall cycles are classified live, exactly as the
                    # naive loop would.
                    self.wake_cb(dest)
            del arrived[:]
            self.stats.bump("barrier_releases")
        return True

    def recv(self, slot: int, cycle: int) -> Optional[int]:
        return self.output_queues[slot].pop()

    def can_switch_out(self, slot: int) -> bool:
        return self.in_flight[slot] == 0 and self.staging[slot].empty

    def stall_kind(self, slot: int) -> str:
        """Barrier-wait when this slot's thread has arrived and waits."""
        thread_id = self.threads[slot]
        if thread_id is not None:
            for _participants, arrived in self.barriers.values():
                if thread_id in arrived:
                    return "barrier"
        return "queue"

    def _slot_of(self, thread_id: int) -> Optional[int]:
        for slot, tid in enumerate(self.threads):
            if tid == thread_id:
                return slot
        return None

    # -- snapshot contract (DESIGN.md §8) ---------------------------------------

    def snapshot_state(self) -> dict:
        """Mutable network state.  Bindings and the wake callback are
        construction/setup-time wiring recreated by the workload's setup."""
        return {
            "staging": [entry.snapshot_state() for entry in self.staging],
            "output_queues": [queue.snapshot_state()
                              for queue in self.output_queues],
            "threads": list(self.threads),
            "in_flight": list(self.in_flight),
            "pending": [[deliver, dest, list(words)]
                        for deliver, dest, words in self.pending],
            "barriers": [[bid, list(participants), list(arrived)]
                         for bid, (participants, arrived)
                         in sorted(self.barriers.items())],
        }

    def restore_state(self, state: dict) -> None:
        for entry, entry_state in zip(self.staging, state["staging"]):
            entry.restore_state(entry_state)
        for queue, queue_state in zip(self.output_queues,
                                      state["output_queues"]):
            queue.restore_state(queue_state)
        self.threads = list(state["threads"])
        self.in_flight = list(state["in_flight"])
        self.pending = deque((deliver, dest, list(words))
                             for deliver, dest, words in state["pending"])
        self.barriers = {bid: (tuple(participants), list(arrived))
                         for bid, participants, arrived
                         in state["barriers"]}

    # -- timing -----------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        while self.pending:
            deliver_cycle, dest, words = self.pending[0]
            if deliver_cycle > cycle:
                break
            queue = self.output_queues[dest]
            if not queue.space_for(len(words)):
                self.stats.bump("output_queue_stalls")
                break
            self.pending.popleft()
            queue.push_words(words)
            self.in_flight[dest] -= 1
            if self.wake_cb is not None:
                self.wake_cb(dest)
            self.stats.bump("deliveries")

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Fast-forward contract (DESIGN.md): next delivery cycle, or
        ``now + 1`` while delivered words sit in an output queue (a blocked
        core may consume them on its next tick), or None when idle."""
        for queue in self.output_queues:
            if not queue.empty:
                return now + 1
        if self.pending:
            t = self.pending[0][0]
            return t if t > now else now + 1
        return None


def _staged_words(data: bytes, valid: int) -> List[int]:
    """Extract the word-aligned valid words from a sealed staging entry."""
    words = []
    for offset in range(0, len(data), 4):
        if (valid >> offset) & 0xF == 0xF:
            words.append(int.from_bytes(data[offset:offset + 4], "little",
                                        signed=True))
    if not words:
        raise SplError("send with no valid words staged")
    return words


def attach_network(machine, core_indices,
                   send_latency: int = SEND_LATENCY,
                   barrier_latency: int = BARRIER_RELEASE_LATENCY,
                   name: str = "comm") -> DedicatedCommController:
    """Wire an idealized network across arbitrary cores.

    Used both for the per-cluster OOO2+Comm network and for the chip-wide
    dedicated barrier network of the homogeneous baseline (barrier networks
    in [2],[27] span the whole machine).
    """
    controller = DedicatedCommController(
        len(core_indices), machine.stats.child(name),
        send_latency, barrier_latency)
    for slot, core_index in enumerate(core_indices):
        core = machine.cores[core_index]
        if core.spl_port is not None:
            raise ConfigError(f"core {core_index} already has a port")
        core.spl_port = controller.ports[slot]
        if core.ctx is not None:
            controller.set_thread(slot, core.ctx.thread_id)
    cores = [machine.cores[index] for index in core_indices]

    def _wake(slot: int, _cores=cores) -> None:
        _cores[slot].ff_poke = True

    controller.wake_cb = _wake
    machine.add_controller(controller)
    return controller


def attach_comm_network(machine, cluster_index: int,
                        send_latency: int = SEND_LATENCY,
                        barrier_latency: int = BARRIER_RELEASE_LATENCY
                        ) -> DedicatedCommController:
    """Equip a conventional cluster with the idealized network.

    Returns the controller; callers configure sends/barriers on it.
    """
    cluster = machine.clusters[cluster_index]
    if cluster.controller is not None:
        raise ConfigError("cluster already has an SPL fabric")
    return attach_network(machine, cluster.core_indices, send_latency,
                          barrier_latency, name=f"comm{cluster_index}")
