"""Software synchronization baselines: memory-based barriers and queues.

These are *program-level* constructs emitted into workload programs with
the macro assembler — the software alternatives the paper measures ReMAP
against (Figure 7(a) software barriers; the Section V-B software-queue
comparison).  They use ``amo_add``/plain loads and stores over the coherent
memory system, so their cost (atomic serialization, invalidation traffic,
spin latency) emerges from the simulated MESI hierarchy.
"""

from __future__ import annotations

from repro.isa.assembler import Asm
from repro.isa.program import MemoryImage


class SwBarrier:
    """A centralized sense-reversing barrier in shared memory.

    Layout: one cache line holding the arrival counter, and a separate line
    holding the global sense flag (kept apart to reduce false sharing —
    which is itself modelled, so keeping them together would be slower,
    exactly as on real hardware).
    """

    def __init__(self, image: MemoryImage, n_threads: int) -> None:
        self.n_threads = n_threads
        self.counter_addr = image.alloc(4, align=32)
        image.alloc(28)  # pad the counter's line
        self.sense_addr = image.alloc(4, align=32)
        image.alloc(28)
        image.write_word(self.counter_addr, 0)
        image.write_word(self.sense_addr, 0)

    def emit(self, a: Asm, local_sense_reg: str, tmp1: str, tmp2: str,
             addr_reg: str) -> None:
        """Emit barrier code.

        ``local_sense_reg`` must be initialized to 1 before first use and
        is toggled here on every barrier episode.  Clobbers tmp1/tmp2/addr.
        """
        spin = a.fresh_label("bar_spin")
        out = a.fresh_label("bar_out")
        # count = fetch_and_add(counter, 1)
        a.li(addr_reg, self.counter_addr)
        a.li(tmp1, 1)
        a.amo_add(tmp2, addr_reg, tmp1)
        a.addi(tmp2, tmp2, 1)
        a.li(tmp1, self.n_threads)
        a.bne(tmp2, tmp1, spin)
        # Last arriver: reset the counter and flip the global sense.
        a.sw("r0", addr_reg, 0)
        a.li(addr_reg, self.sense_addr)
        a.sw(local_sense_reg, addr_reg, 0)
        a.fence()
        a.j(out)
        a.label(spin)
        a.li(addr_reg, self.sense_addr)
        a.lw(tmp1, addr_reg, 0)
        a.bne(tmp1, local_sense_reg, spin)
        a.label(out)
        # Toggle local sense for the next episode.
        a.xori(local_sense_reg, local_sense_reg, 1)
        a.fence()


class SwQueue:
    """A single-producer single-consumer ring buffer in shared memory.

    ``head``/``tail`` counters live on separate cache lines from the data
    (and from each other).  The producer spins when the queue is full, the
    consumer when it is empty — the classic software alternative whose
    overhead Section V-B quantifies (>180% slowdown on average).
    """

    def __init__(self, image: MemoryImage, capacity_words: int = 64) -> None:
        if capacity_words & (capacity_words - 1):
            raise ValueError("queue capacity must be a power of two")
        self.capacity = capacity_words
        self.head_addr = image.alloc(4, align=32)  # consumer index
        image.alloc(28)
        self.tail_addr = image.alloc(4, align=32)  # producer index
        image.alloc(28)
        self.data_addr = image.alloc(4 * capacity_words, align=32)
        image.write_word(self.head_addr, 0)
        image.write_word(self.tail_addr, 0)

    def emit_push(self, a: Asm, value_reg: str, tail_reg: str, tmp1: str,
                  tmp2: str, addr_reg: str) -> None:
        """Producer: append ``value_reg``.

        ``tail_reg`` caches the producer's private tail index (init to 0).
        """
        spin = a.fresh_label("q_full")
        a.label(spin)
        a.li(addr_reg, self.head_addr)
        a.lw(tmp1, addr_reg, 0)
        a.sub(tmp1, tail_reg, tmp1)  # occupancy = tail - head
        a.li(tmp2, self.capacity)
        a.bge(tmp1, tmp2, spin)
        # data[tail & (cap-1)] = value
        a.andi(tmp1, tail_reg, self.capacity - 1)
        a.slli(tmp1, tmp1, 2)
        a.li(addr_reg, self.data_addr)
        a.add(addr_reg, addr_reg, tmp1)
        a.sw(value_reg, addr_reg, 0)
        a.addi(tail_reg, tail_reg, 1)
        # publish the new tail (release: data store precedes tail store)
        a.fence()
        a.li(addr_reg, self.tail_addr)
        a.sw(tail_reg, addr_reg, 0)

    def emit_pop(self, a: Asm, dest_reg: str, head_reg: str, tmp1: str,
                 addr_reg: str) -> None:
        """Consumer: pop into ``dest_reg``.

        ``head_reg`` caches the consumer's private head index (init to 0).
        """
        spin = a.fresh_label("q_empty")
        a.label(spin)
        a.li(addr_reg, self.tail_addr)
        a.lw(tmp1, addr_reg, 0)
        a.beq(tmp1, head_reg, spin)
        a.andi(tmp1, head_reg, self.capacity - 1)
        a.slli(tmp1, tmp1, 2)
        a.li(addr_reg, self.data_addr)
        a.add(addr_reg, addr_reg, tmp1)
        a.lw(dest_reg, addr_reg, 0)
        a.addi(head_reg, head_reg, 1)
        a.li(addr_reg, self.head_addr)
        a.sw(head_reg, addr_reg, 0)
