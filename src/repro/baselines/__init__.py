"""Comparison systems: idealized hardware networks and software sync."""

from repro.baselines.comm_network import (
    BARRIER_RELEASE_LATENCY, SEND_LATENCY, CommBinding, CommPort,
    DedicatedCommController, attach_comm_network,
)
from repro.baselines.sw_sync import SwBarrier, SwQueue

__all__ = [
    "BARRIER_RELEASE_LATENCY", "SEND_LATENCY", "CommBinding", "CommPort",
    "DedicatedCommController", "attach_comm_network",
    "SwBarrier", "SwQueue",
]
