"""SPL hardware tables (Figure 2(b)): Thread-to-Core and Barrier tables.

The Thread-to-Core Table virtualizes destination selection for interthread
communication (Section II-B1): producers name a destination *thread*; the
table maps it to the core currently running it and counts in-flight fabric
results bound for that core so a consumer cannot be switched out while data
is in flight.

The Barrier Table plus the inter-cluster barrier bus (Section II-B2) track
arrivals.  Cross-cluster arrival broadcasts take ``bus_latency`` core
cycles to become visible.  Barriers are reused across iterations, so the
bus keeps a *cumulative* arrival count per barrier and each cluster
releases generation ``g`` once the count visible to it reaches
``total_threads * (g + 1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import SplError

#: Maximum in-flight fabric instructions destined to one core (the fabric
#: has 24 rows, so the counter is 5 bits — Section II-B1).
MAX_IN_FLIGHT = 24


class ThreadToCoreTable:
    """One entry per core of the cluster."""

    def __init__(self, n_cores: int, max_ids: int = 256) -> None:
        self.n_cores = n_cores
        self.max_ids = max_ids
        self.thread_ids: List[Optional[int]] = [None] * n_cores
        self.app_ids: List[int] = [0] * n_cores
        self.in_flight: List[int] = [0] * n_cores

    def set_thread(self, core_slot: int, thread_id: Optional[int],
                   app_id: int = 0) -> None:
        if thread_id is not None and not 0 <= thread_id < self.max_ids:
            raise SplError(f"thread id {thread_id} out of table range")
        if thread_id is None and self.in_flight[core_slot]:
            raise SplError(
                f"core slot {core_slot} switched out with "
                f"{self.in_flight[core_slot]} in-flight SPL results")
        self.thread_ids[core_slot] = thread_id
        self.app_ids[core_slot] = app_id

    def lookup(self, thread_id: int) -> Optional[int]:
        """Core slot currently running ``thread_id``, or None."""
        for slot, tid in enumerate(self.thread_ids):
            if tid == thread_id:
                return slot
        return None

    def try_reserve(self, core_slot: int) -> bool:
        """Count one more in-flight result to ``core_slot`` if possible."""
        if self.in_flight[core_slot] >= MAX_IN_FLIGHT:
            return False
        self.in_flight[core_slot] += 1
        return True

    def release(self, core_slot: int) -> None:
        if self.in_flight[core_slot] <= 0:
            raise SplError(f"in-flight underflow on core slot {core_slot}")
        self.in_flight[core_slot] -= 1

    def can_switch_out(self, core_slot: int) -> bool:
        return self.in_flight[core_slot] == 0

    def snapshot_state(self) -> dict:
        return {"thread_ids": list(self.thread_ids),
                "app_ids": list(self.app_ids),
                "in_flight": list(self.in_flight)}

    def restore_state(self, state: dict) -> None:
        self.thread_ids = list(state["thread_ids"])
        self.app_ids = list(state["app_ids"])
        self.in_flight = list(state["in_flight"])


class BarrierBus:
    """Chip-wide barrier state shared by all SPL clusters.

    Registration mirrors what a runtime/OS would program: the barrier id,
    application id, and the participating thread ids.
    """

    def __init__(self, bus_latency: int, max_ids: int = 256) -> None:
        self.bus_latency = bus_latency
        self.max_ids = max_ids
        #: barrier id -> (app_id, participating thread ids)
        self.registry: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        #: barrier id -> arrivals visible to everyone already
        self.base_count: Dict[int, int] = {}
        #: barrier id -> recent arrivals as (cycle, cluster_id)
        self.recent: Dict[int, List[Tuple[int, int]]] = {}

    def register(self, barrier_id: int, app_id: int,
                 thread_ids: Tuple[int, ...]) -> None:
        if not 0 <= barrier_id < self.max_ids:
            raise SplError(f"barrier id {barrier_id} out of range")
        if not thread_ids:
            raise SplError("barrier with no participants")
        self.registry[barrier_id] = (app_id, tuple(thread_ids))
        self.base_count[barrier_id] = 0
        self.recent[barrier_id] = []

    def participants(self, barrier_id: int) -> Tuple[int, ...]:
        try:
            return self.registry[barrier_id][1]
        except KeyError:
            raise SplError(f"barrier {barrier_id} not registered") from None

    def registered_participants(self,
                                barrier_id: int) -> Optional[Tuple[int, ...]]:
        """Participants of ``barrier_id``, or ``None`` when unregistered.

        Non-raising introspection twin of :meth:`participants`, used by
        the static verifier (an unregistered barrier is a *finding*
        there, not a fault).
        """
        entry = self.registry.get(barrier_id)
        return None if entry is None else entry[1]

    def barrier_ids(self) -> Tuple[int, ...]:
        """Every registered barrier id, sorted (introspection)."""
        return tuple(sorted(self.registry))

    def total(self, barrier_id: int) -> int:
        return len(self.participants(barrier_id))

    def arrive(self, barrier_id: int, thread_id: int, cluster_id: int,
               cycle: int, app_id: Optional[int] = None) -> None:
        registered_app, participants = self.registry.get(
            barrier_id, (None, ()))
        if thread_id not in participants:
            raise SplError(
                f"thread {thread_id} not registered for barrier {barrier_id}")
        if app_id is not None and app_id != registered_app:
            raise SplError(
                f"barrier {barrier_id} belongs to application "
                f"{registered_app}, not {app_id}")
        self.recent[barrier_id].append((cycle, cluster_id))

    def visible_count(self, barrier_id: int, cluster_id: int,
                      now: int) -> int:
        """Cumulative arrivals visible to ``cluster_id`` at ``now``."""
        base = self.base_count.get(barrier_id, 0)
        recent = self.recent.get(barrier_id, [])
        if recent:
            # Arrivals older than the bus latency are visible to everyone;
            # fold them into the base count so the list stays short.
            horizon = now - self.bus_latency
            keep: List[Tuple[int, int]] = []
            for cycle, cluster in recent:
                if cycle <= horizon:
                    base += 1
                else:
                    keep.append((cycle, cluster))
            self.base_count[barrier_id] = base
            self.recent[barrier_id] = keep
            for cycle, cluster in keep:
                if cluster == cluster_id and cycle <= now:
                    base += 1
        return base

    def next_visible_cycle(self, barrier_id: int, cluster_id: int,
                           needed: int, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which ``visible_count`` for
        ``cluster_id`` reaches ``needed``, or None when not enough threads
        have arrived yet (no bound exists).

        Pure query for the fast-forward scheduler: unlike
        :meth:`visible_count` it folds nothing, so probing the future does
        not disturb the bus state.
        """
        base = self.base_count.get(barrier_id, 0)
        if needed <= base:
            return now
        recent = self.recent.get(barrier_id, [])
        if base + len(recent) < needed:
            return None
        times = sorted(
            cycle if cluster == cluster_id else cycle + self.bus_latency
            for cycle, cluster in recent)
        t = times[needed - base - 1]
        return t if t > now else now


    def snapshot_state(self) -> dict:
        """Mutable arrival state.  The registry is *not* captured: it is
        runtime configuration recreated by the workload's setup hook when
        the restore target machine is rebuilt."""
        return {
            "base_count": [[bid, count]
                           for bid, count in sorted(self.base_count.items())],
            "recent": [[bid, [list(item) for item in items]]
                       for bid, items in sorted(self.recent.items())],
        }

    def restore_state(self, state: dict) -> None:
        self.base_count = {bid: count for bid, count in state["base_count"]}
        self.recent = {bid: [tuple(item) for item in items]
                       for bid, items in state["recent"]}


class BarrierTable:
    """Per-cluster view of active barriers (Figure 2(b))."""

    def __init__(self, cluster_id: int, bus: BarrierBus) -> None:
        self.cluster_id = cluster_id
        self.bus = bus
        #: barrier id -> generation released locally so far
        self.generation: Dict[int, int] = {}

    def arrive(self, barrier_id: int, thread_id: int, cycle: int,
               app_id: Optional[int] = None) -> None:
        self.bus.arrive(barrier_id, thread_id, self.cluster_id, cycle,
                        app_id)
        self.generation.setdefault(barrier_id, 0)

    def ready(self, barrier_id: int, now: int) -> bool:
        """True when the current generation may be released locally."""
        generation = self.generation.get(barrier_id, 0)
        needed = self.bus.total(barrier_id) * (generation + 1)
        return self.bus.visible_count(barrier_id, self.cluster_id,
                                      now) >= needed

    def next_ready_cycle(self, barrier_id: int, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which :meth:`ready` turns True, or
        None while a participant of the current generation is still
        missing (their arrival is the unbounded wake event)."""
        generation = self.generation.get(barrier_id, 0)
        needed = self.bus.total(barrier_id) * (generation + 1)
        return self.bus.next_visible_cycle(barrier_id, self.cluster_id,
                                           needed, now)

    def release(self, barrier_id: int) -> None:
        self.generation[barrier_id] = self.generation.get(barrier_id, 0) + 1

    def snapshot_state(self) -> dict:
        return {"generation": [[bid, gen] for bid, gen
                               in sorted(self.generation.items())]}

    def restore_state(self, state: dict) -> None:
        self.generation = {bid: gen for bid, gen in state["generation"]}
