"""SPL function objects: a mapped dataflow graph plus issue metadata.

Two kinds exist (Section II-B):

* **Regular functions** read their inputs from the issuing core's sealed
  input-queue entry and deliver outputs either back to the issuing core
  (individual computation, Figure 1(a)) or to a consumer thread's output
  queue (communication+computation, Figure 1(b)).
* **Barrier functions** (Figure 1(c)) consume the queue-head entries of
  *all* participating cores of the cluster at once and broadcast their
  outputs to every participant.  Their DFG inputs are named ``s<slot>_*``
  where ``slot`` is the participant's position among the cluster's
  participating cores.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.common.config import ENV_NO_CODEGEN, env_enabled
from repro.common.errors import CodegenError, SplError
from repro.core.codegen import CompiledDfg, compile_dfg
from repro.core.dfg import Dfg, DfgOp
from repro.core.mapper import RowMapping, map_dfg


class SplFunction:
    """An SPL configuration ready to be bound to cores."""

    def __init__(self, dfg: Dfg, is_barrier: bool = False,
                 cells_per_row: int = 16,
                 retimed_feedback_ii: Optional[int] = None) -> None:
        """``retimed_feedback_ii`` overrides the mapper's conservative
        feedback initiation interval for stateful graphs whose delay
        elements can be retimed across rows (systolic mapping of lattice/
        IIR recurrences): successive inputs then enter every
        ``retimed_feedback_ii`` fabric cycles instead of waiting for the
        whole feedback path."""
        self.dfg = dfg
        self.is_barrier = is_barrier
        self.mapping: RowMapping = map_dfg(dfg, cells_per_row)
        self.rows = self.mapping.rows
        self._feedback_override = retimed_feedback_ii
        #: Flip-flop contents of the function's delay registers.  State
        #: lives with the function *instance*: time-multiplexing a stateful
        #: configuration between threads would require a state swap, so
        #: stateful workloads bind one instance per thread/partition.
        self.state: dict = {}
        # Compiled hot path (DESIGN.md "Compiled hot paths"): the DFG is
        # assembled once into straight-line Python on first evaluation.
        # The env gate is sampled at construction so a run is all-compiled
        # or all-interpreted; graphs the generator cannot emit fall back
        # to the interpreter (the GEN001 lint rule reports them).
        self._codegen_enabled = env_enabled(ENV_NO_CODEGEN)
        self._compiled: Optional[CompiledDfg] = None
        self._compiled_version = -1

    @property
    def is_stateful(self) -> bool:
        return self.dfg.is_stateful

    @property
    def feedback_ii(self) -> int:
        if self._feedback_override is not None:
            return self._feedback_override
        return self.mapping.feedback_ii

    def reset_state(self) -> None:
        self.state.clear()

    @property
    def compiled(self) -> Optional[CompiledDfg]:
        """The compiled evaluators, or None when codegen is off/failed."""
        if not self._codegen_enabled:
            return None
        if self._compiled is None or \
                self._compiled_version != self.dfg._version:
            try:
                self._compiled = compile_dfg(self.dfg)
            except CodegenError:
                self._codegen_enabled = False
                return None
            self._compiled_version = self.dfg._version
        return self._compiled

    @property
    def name(self) -> str:
        return self.dfg.name

    @property
    def n_outputs(self) -> int:
        return len(self.dfg.output_order)

    # -- input decoding ---------------------------------------------------------

    def decode_entry(self, data: bytes, valid: int,
                     names: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Decode named inputs from one 16-byte staged entry."""
        names = names if names is not None else list(self.dfg.inputs)
        values: Dict[str, int] = {}
        for name in names:
            node = self.dfg.inputs[name]
            offset = self.dfg.input_offsets[name]
            mask = ((1 << node.width) - 1) << offset
            if (valid & mask) != mask:
                raise SplError(
                    f"{self.name}: input {name!r} bytes not valid in entry")
            raw = data[offset:offset + node.width]
            values[name] = int.from_bytes(raw, "little", signed=True)
        return values

    def slot_input_names(self, slot: int) -> List[str]:
        """Barrier functions: inputs contributed by participant ``slot``."""
        prefix = f"s{slot}_"
        return [n for n in self.dfg.inputs if n.startswith(prefix)]

    def evaluate_entry(self, data: bytes, valid: int) -> List[int]:
        """Evaluate a regular function on one staged entry; word outputs."""
        if self.is_barrier:
            raise SplError(f"{self.name}: barrier function needs all slots")
        compiled = self.compiled
        if compiled is not None and compiled.evaluate_entry is not None:
            # Fused decode+evaluate closure; bit-exact with the path below.
            return compiled.evaluate_entry(data, valid, self.state)
        outputs = self.dfg.evaluate(self.decode_entry(data, valid),
                                    state=self.state)
        return [outputs[name] for name in self.dfg.output_order]

    def evaluate_barrier(self, entries: Dict[int, tuple]) -> List[int]:
        """Evaluate a barrier function on {slot: (data, valid)} entries."""
        if not self.is_barrier:
            raise SplError(f"{self.name}: not a barrier function")
        values: Dict[str, int] = {}
        for slot, (data, valid) in entries.items():
            names = self.slot_input_names(slot)
            local = self.decode_entry(data, valid, names)
            # Per-slot inputs share offsets across slots; rename back.
            values.update(local)
        missing = set(self.dfg.inputs) - set(values)
        if missing:
            raise SplError(f"{self.name}: no participant provided "
                           f"{sorted(missing)}")
        compiled = self.compiled
        outputs = (compiled.evaluate(values) if compiled is not None
                   else self.dfg.evaluate(values))
        return [outputs[name] for name in self.dfg.output_order]


def pack_word(value: int) -> bytes:
    return struct.pack("<i", value & 0xFFFFFFFF if value >= 0 else value)


# -- common function builders -------------------------------------------------


def identity_function(name: str = "route", n_words: int = 1) -> SplFunction:
    """Pure communication: pass staged words through unchanged (1 row)."""
    dfg = Dfg(name)
    for i in range(n_words):
        node = dfg.input(f"v{i}", offset=4 * i, width=4)
        dfg.output(f"v{i}", dfg.op(DfgOp.PASS, node))
    return SplFunction(dfg)


def barrier_token_function(n_slots: int, name: str = "barrier") -> SplFunction:
    """Synchronization-only barrier: consume one word per participant and
    hand each participant a token (1 row)."""
    dfg = Dfg(name)
    nodes = [dfg.input(f"s{slot}_v", offset=0, width=4, group=f"s{slot}")
             for slot in range(n_slots)]
    token = dfg.op(DfgOp.PASS, nodes[0])
    dfg.output("token", token)
    return SplFunction(dfg, is_barrier=True)


def barrier_reduce_function(n_slots: int, op: DfgOp,
                            name: str = "reduce") -> SplFunction:
    """Barrier with integrated reduction (e.g. the Dijkstra global minimum,
    Figure 7(c)): a balanced tree of ``op`` over one word per participant."""
    if op not in (DfgOp.MIN, DfgOp.MAX, DfgOp.ADD):
        raise SplError(f"unsupported barrier reduction {op}")
    dfg = Dfg(name)
    level = [dfg.input(f"s{slot}_v", offset=0, width=4, group=f"s{slot}")
             for slot in range(n_slots)]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(dfg.op(op, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    result = level[0]
    if result.op is DfgOp.INPUT:  # single participant: still one fabric pass
        result = dfg.op(DfgOp.PASS, result)
    dfg.output("result", result)
    return SplFunction(dfg, is_barrier=True)
