"""Dataflow graphs: the functions synthesized into the SPL fabric.

An SPL configuration is described as a small dataflow graph over fixed-width
signed integers.  The graph is *functionally evaluated* during simulation
(real values flow through the fabric) and *spatially mapped* onto rows by
:mod:`repro.core.mapper`, reproducing mappings like the 10-row hmmer ``mc``
computation of Figure 6.

Row-depth model (Section II-A): each row contains sixteen 8-bit cells with a
4-LUT, carry chain, and barrel shifters, and completes the longest
permissible computation in one 500 MHz cycle.  Accordingly:

* add/sub/logic/shift/compare/select: 1 row (carry chain spans the cells)
* min/max: 2 rows (a compare row feeding a select row, as in Figure 6)
* multiply: 4 rows (shift-add tree spread over rows)

Cell cost of an operation equals its width in bytes (a 32-bit add occupies
four 8-bit cells of a row).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.common.errors import MappingError
from repro.common.utils import to_signed


class DfgOp(enum.Enum):
    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPGT = "cmpgt"
    CMPEQ = "cmpeq"
    SELECT = "select"  # select(cond, a, b) -> a if cond else b
    MIN = "min"
    MAX = "max"
    PASS = "pass"
    SHLV = "shlv"  # variable shifts: the cells' barrel shifters
    SHRV = "shrv"
    #: Inter-invocation state held in a row's flip-flops: outputs the value
    #: its source produced on the PREVIOUS invocation (feedback allowed).
    DELAY = "delay"

#: Rows of fabric depth each operation consumes.
ROW_DEPTH = {
    DfgOp.INPUT: 0, DfgOp.CONST: 0,
    DfgOp.ADD: 1, DfgOp.SUB: 1, DfgOp.AND: 1, DfgOp.OR: 1, DfgOp.XOR: 1,
    DfgOp.SHL: 1, DfgOp.SHR: 1, DfgOp.CMPGT: 1, DfgOp.CMPEQ: 1,
    DfgOp.SELECT: 1, DfgOp.PASS: 1,
    DfgOp.SHLV: 1, DfgOp.SHRV: 1,
    DfgOp.MIN: 2, DfgOp.MAX: 2,
    DfgOp.MUL: 4,
    DfgOp.DELAY: 0,
}


class DfgNode:
    """One operation in the graph."""

    __slots__ = ("op", "operands", "width", "const", "name", "index")

    def __init__(self, op: DfgOp, operands: Sequence["DfgNode"],
                 width: int, const: int = 0, name: str = "") -> None:
        self.op = op
        self.operands = list(operands)
        self.width = width
        self.const = const
        self.name = name
        self.index = -1

    @property
    def depth_rows(self) -> int:
        return ROW_DEPTH[self.op]

    @property
    def cell_cost(self) -> int:
        return self.width

    def __repr__(self) -> str:
        return f"DfgNode({self.op.value}, w{self.width}, {self.name!r})"


class Dfg:
    """A named dataflow graph with named inputs and outputs.

    Inputs carry a byte offset into the SPL input-queue entry
    (``spl_load`` alignment, Section II-A).  Offsets 0-15 arrive in the
    first input beat; 16-31 in a second beat (multi-beat entries stream
    into successive rows over consecutive fabric cycles).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[DfgNode] = []
        self.inputs: Dict[str, DfgNode] = {}
        self.input_offsets: Dict[str, int] = {}
        self.input_groups: Dict[str, str] = {}
        self.outputs: Dict[str, DfgNode] = {}
        self.output_order: List[str] = []
        #: Bumped on every structural mutation; compiled-closure caches
        #: (repro.core.function.SplFunction) record the version they were
        #: built against and recompile on mismatch.
        self._version = 0

    # -- construction --------------------------------------------------------

    def _add(self, node: DfgNode) -> DfgNode:
        node.index = len(self.nodes)
        self.nodes.append(node)
        self._version += 1
        return node

    def input(self, name: str, offset: int, width: int = 4,
              group: str = "") -> DfgNode:
        """Declare an input read from a staged entry at ``offset``.

        ``group`` distinguishes entries: barrier functions read one entry
        per participant, so inputs of different groups may share offsets.
        """
        if name in self.inputs:
            raise MappingError(f"{self.name}: duplicate input {name!r}")
        if width not in (1, 2, 4) or offset < 0 or offset + width > 32:
            raise MappingError(f"{self.name}: bad input slot {name!r}")
        for other, other_offset in self.input_offsets.items():
            if self.input_groups[other] != group:
                continue
            other_width = self.inputs[other].width
            if offset < other_offset + other_width and \
                    other_offset < offset + width:
                raise MappingError(
                    f"{self.name}: input {name!r} overlaps {other!r}")
        node = self._add(DfgNode(DfgOp.INPUT, [], width, name=name))
        self.inputs[name] = node
        self.input_offsets[name] = offset
        self.input_groups[name] = group
        return node

    def const(self, value: int, width: int = 4) -> DfgNode:
        return self._add(DfgNode(DfgOp.CONST, [], width, const=value))

    def op(self, op: DfgOp, *operands: DfgNode, width: Optional[int] = None,
           shift: int = 0) -> DfgNode:
        if not operands:
            raise MappingError(f"{self.name}: {op.value} with no operands")
        width = width or max(o.width for o in operands)
        node = self._add(DfgNode(op, operands, width, const=shift))
        return node

    def add(self, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.ADD, a, b)

    def sub(self, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.SUB, a, b)

    def mul(self, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.MUL, a, b)

    def max_(self, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.MAX, a, b)

    def min_(self, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.MIN, a, b)

    def select(self, cond: DfgNode, a: DfgNode, b: DfgNode) -> DfgNode:
        return self.op(DfgOp.SELECT, cond, a, b)

    def clamp_floor(self, a: DfgNode, floor: int) -> DfgNode:
        """max(a, floor) — e.g. the hmmer ``-INFTY`` saturation."""
        return self.max_(a, self.const(floor, a.width))

    def clamp(self, a: DfgNode, lo: int, hi: int) -> DfgNode:
        """Saturate ``a`` into [lo, hi]."""
        return self.min_(self.max_(a, self.const(lo, a.width)),
                         self.const(hi, a.width))

    def delay(self, width: int = 4, init: int = 0) -> DfgNode:
        """A flip-flop state element; wire its input with set_delay_source
        (feedback through delays is legal — that is the point)."""
        return self._add(DfgNode(DfgOp.DELAY, [], width, const=init))

    def set_delay_source(self, delay_node: DfgNode, src: DfgNode) -> None:
        if delay_node.op is not DfgOp.DELAY:
            raise MappingError("set_delay_source on a non-delay node")
        if delay_node.operands:
            raise MappingError("delay source already wired")
        delay_node.operands.append(src)
        self._version += 1

    def output(self, name: str, node: DfgNode) -> None:
        if name in self.outputs:
            raise MappingError(f"{self.name}: duplicate output {name!r}")
        self.outputs[name] = node
        self.output_order.append(name)
        self._version += 1

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, inputs: Dict[str, int],
                 state: Optional[Dict[int, int]] = None) -> Dict[str, int]:
        """Functionally evaluate the graph on signed integer inputs.

        ``state`` maps delay-node index -> stored value; it is read for
        this invocation and updated in place with the new values.
        """
        missing = set(self.inputs) - set(inputs)
        if missing:
            raise MappingError(
                f"{self.name}: missing inputs {sorted(missing)}")
        values: List[int] = [0] * len(self.nodes)
        delays: List[DfgNode] = []
        for node in self.nodes:
            if node.op is DfgOp.DELAY:
                stored = state.get(node.index, node.const) if state \
                    is not None else node.const
                values[node.index] = to_signed(stored, node.width * 8)
                delays.append(node)
            else:
                values[node.index] = self._eval_node(node, values, inputs)
        if state is not None:
            for node in delays:
                if not node.operands:
                    raise MappingError(
                        f"{self.name}: delay node without a source")
                state[node.index] = values[node.operands[0].index]
        return {name: values[node.index]
                for name, node in self.outputs.items()}

    @property
    def is_stateful(self) -> bool:
        return any(node.op is DfgOp.DELAY for node in self.nodes)

    def _eval_node(self, node: DfgNode, values: List[int],
                   inputs: Dict[str, int]) -> int:
        bits = node.width * 8
        op = node.op
        if op is DfgOp.INPUT:
            return to_signed(inputs[node.name], bits)
        if op is DfgOp.CONST:
            return to_signed(node.const, bits)
        args = [values[o.index] for o in node.operands]
        if op is DfgOp.ADD:
            result = args[0] + args[1]
        elif op is DfgOp.SUB:
            result = args[0] - args[1]
        elif op is DfgOp.MUL:
            result = args[0] * args[1]
        elif op is DfgOp.AND:
            result = args[0] & args[1]
        elif op is DfgOp.OR:
            result = args[0] | args[1]
        elif op is DfgOp.XOR:
            result = args[0] ^ args[1]
        elif op is DfgOp.SHL:
            result = args[0] << node.const
        elif op is DfgOp.SHR:
            result = args[0] >> node.const
        elif op is DfgOp.SHLV:
            result = args[0] << (args[1] & 31)
        elif op is DfgOp.SHRV:
            result = args[0] >> (args[1] & 31)
        elif op is DfgOp.CMPGT:
            result = 1 if args[0] > args[1] else 0
        elif op is DfgOp.CMPEQ:
            result = 1 if args[0] == args[1] else 0
        elif op is DfgOp.SELECT:
            result = args[1] if args[0] else args[2]
        elif op is DfgOp.MIN:
            result = min(args[0], args[1])
        elif op is DfgOp.MAX:
            result = max(args[0], args[1])
        elif op is DfgOp.PASS:
            result = args[0]
        else:  # pragma: no cover
            raise MappingError(f"cannot evaluate {op}")
        return to_signed(result, bits)

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the graph (for documentation/debug)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for node in self.nodes:
            if node.op is DfgOp.INPUT:
                label = f"in {node.name}"
                shape = "invhouse"
            elif node.op is DfgOp.CONST:
                label = f"const {node.const}"
                shape = "plaintext"
            elif node.op is DfgOp.DELAY:
                label = "delay"
                shape = "box"
            else:
                label = node.op.value
                shape = "ellipse"
            lines.append(f'  n{node.index} [label="{label}" '
                         f'shape={shape}];')
            for operand in node.operands:
                style = " [style=dashed]" if node.op is DfgOp.DELAY else ""
                lines.append(f"  n{operand.index} -> n{node.index}{style};")
        for name, node in self.outputs.items():
            lines.append(f'  out_{name} [label="out {name}" '
                         f'shape=house];')
            lines.append(f"  n{node.index} -> out_{name};")
        lines.append("}")
        return "\n".join(lines)

    def validate(self) -> None:
        """Check topological ordering (delays may close feedback loops)."""
        for node in self.nodes:
            if node.op is DfgOp.DELAY:
                if not node.operands:
                    raise MappingError(
                        f"{self.name}: delay node without a source")
                continue
            for operand in node.operands:
                if operand.index >= node.index:
                    raise MappingError(
                        f"{self.name}: node ordering violated at "
                        f"{node!r} <- {operand!r}")
        if not self.outputs:
            raise MappingError(f"{self.name}: no outputs")
