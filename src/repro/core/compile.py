"""A small expression compiler for SPL configurations.

The paper assumes compiler support for producing fabric mappings
(Section IV-B, citing the PipeRench/Garp/Chimaera compilers).  This module
provides that front end for this reproduction: it compiles arithmetic
expressions into :class:`repro.core.dfg.Dfg` graphs, which the row mapper
then schedules onto the fabric.

Grammar (C-like, integers only)::

    program  := stmt+
    stmt     := NAME "=" expr ";"            # local or output definition
    expr     := ternary
    ternary  := or ("?" or ":" or)?
    or       := and ("|" and)*
    and      := xor ("&" xor)*
    xor      := cmp ("^" cmp)*
    cmp      := shift (("<" | ">" | "==") shift)?
    shift    := sum (("<<" | ">>") sum)*
    sum      := term (("+" | "-") term)*
    term     := unary ("*" unary)*
    unary    := "-" unary | atom
    atom     := NAME | NUMBER | call | "(" expr ")"
    call     := ("min" | "max" | "clamp" | "abs" | "select") "(" args ")"

Inputs are declared up front with their staging offsets; every assigned
name that is not read later becomes an output.

Example::

    fn = compile_expression(
        "t = max(a + b, c); out = clamp(t * 2, 0, 255);",
        inputs={"a": 0, "b": 4, "c": 8})
    fn.rows           # rows after mapping
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.common.errors import MappingError
from repro.core.dfg import Dfg, DfgNode, DfgOp
from repro.core.function import SplFunction

_TOKEN_RE = re.compile(r"""
    (?P<num>-?\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<|>>|==|[-+*&|^()<>,;?:=])
  | (?P<ws>\s+)
""", re.VERBOSE)


class ExpressionError(MappingError):
    """Raised when an expression cannot be parsed or compiled."""


def _tokenize(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ExpressionError(f"bad character at ...{text[position:]!r}")
        position = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group())
    return tokens


class _Parser:
    """Recursive-descent parser building DFG nodes directly."""

    _FUNCTIONS = ("min", "max", "clamp", "abs", "select")

    def __init__(self, tokens: List[str], graph: Dfg,
                 env: Dict[str, DfgNode], width: int) -> None:
        self.tokens = tokens
        self.position = 0
        self.graph = graph
        self.env = env
        self.width = width

    # -- token helpers --------------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        if expected is not None and token != expected:
            raise ExpressionError(f"expected {expected!r}, got {token!r}")
        self.position += 1
        return token

    # -- grammar ---------------------------------------------------------------

    def parse_program(self) -> List[Tuple[str, DfgNode]]:
        assignments: List[Tuple[str, DfgNode]] = []
        while self.peek() is not None:
            name = self.take()
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                raise ExpressionError(f"bad statement target {name!r}")
            self.take("=")
            node = self.parse_expr()
            self.take(";")
            self.env[name] = node
            assignments.append((name, node))
        if not assignments:
            raise ExpressionError("empty program")
        return assignments

    def parse_expr(self) -> DfgNode:
        return self.parse_ternary()

    def parse_ternary(self) -> DfgNode:
        condition = self.parse_binary(0)
        if self.peek() == "?":
            self.take("?")
            then_value = self.parse_binary(0)
            self.take(":")
            else_value = self.parse_binary(0)
            return self.graph.select(condition, then_value, else_value)
        return condition

    _LEVELS = (("|",), ("&",), ("^",), ("<", ">", "=="), ("<<", ">>"),
               ("+", "-"), ("*",))
    _BINOPS = {"|": DfgOp.OR, "&": DfgOp.AND, "^": DfgOp.XOR,
               "+": DfgOp.ADD, "-": DfgOp.SUB, "*": DfgOp.MUL}

    def parse_binary(self, level: int) -> DfgNode:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        node = self.parse_binary(level + 1)
        while self.peek() in self._LEVELS[level]:
            operator = self.take()
            rhs = self.parse_binary(level + 1)
            node = self._apply(operator, node, rhs)
        return node

    def _apply(self, operator: str, lhs: DfgNode, rhs: DfgNode) -> DfgNode:
        graph = self.graph
        if operator in self._BINOPS:
            return graph.op(self._BINOPS[operator], lhs, rhs,
                            width=self.width)
        if operator == "<":
            return graph.op(DfgOp.CMPGT, rhs, lhs, width=1)
        if operator == ">":
            return graph.op(DfgOp.CMPGT, lhs, rhs, width=1)
        if operator == "==":
            return graph.op(DfgOp.CMPEQ, lhs, rhs, width=1)
        if operator in ("<<", ">>"):
            if rhs.op is DfgOp.CONST:
                op = DfgOp.SHL if operator == "<<" else DfgOp.SHR
                return graph.op(op, lhs, shift=rhs.const, width=self.width)
            op = DfgOp.SHLV if operator == "<<" else DfgOp.SHRV
            return graph.op(op, lhs, rhs, width=self.width)
        raise ExpressionError(f"unknown operator {operator!r}")

    def parse_unary(self) -> DfgNode:
        if self.peek() == "-":
            self.take("-")
            operand = self.parse_unary()
            return self.graph.sub(self.graph.const(0, self.width), operand)
        return self.parse_atom()

    def parse_atom(self) -> DfgNode:
        token = self.take()
        if re.fullmatch(r"-?\d+", token):
            return self.graph.const(int(token), self.width)
        if token == "(":
            node = self.parse_expr()
            self.take(")")
            return node
        if token in self._FUNCTIONS:
            return self.parse_call(token)
        if token in self.env:
            return self.env[token]
        raise ExpressionError(f"undefined name {token!r}")

    def parse_call(self, name: str) -> DfgNode:
        self.take("(")
        args = [self.parse_expr()]
        while self.peek() == ",":
            self.take(",")
            args.append(self.parse_expr())
        self.take(")")
        graph = self.graph
        if name == "min":
            if len(args) < 2:
                raise ExpressionError("min needs at least two arguments")
            node = args[0]
            for arg in args[1:]:
                node = graph.min_(node, arg)
            return node
        if name == "max":
            if len(args) < 2:
                raise ExpressionError("max needs at least two arguments")
            node = args[0]
            for arg in args[1:]:
                node = graph.max_(node, arg)
            return node
        if name == "clamp":
            if len(args) != 3 or args[1].op is not DfgOp.CONST or \
                    args[2].op is not DfgOp.CONST:
                raise ExpressionError(
                    "clamp(value, lo, hi) needs constant bounds")
            return graph.clamp(args[0], args[1].const, args[2].const)
        if name == "abs":
            if len(args) != 1:
                raise ExpressionError("abs takes one argument")
            negated = graph.sub(graph.const(0, self.width), args[0])
            return graph.max_(args[0], negated)
        if name == "select":
            if len(args) != 3:
                raise ExpressionError("select takes three arguments")
            return graph.select(args[0], args[1], args[2])
        raise ExpressionError(f"unknown function {name!r}")


def compile_expression(source: str, inputs: Dict[str, int],
                       name: str = "compiled", width: int = 4,
                       outputs: Optional[List[str]] = None) -> SplFunction:
    """Compile a statement list into a mapped SPL function.

    :param inputs: input name -> staging byte offset.
    :param outputs: names to expose as outputs; default: every assigned
        name that no later statement consumed.
    """
    graph = Dfg(name)
    env: Dict[str, DfgNode] = {}
    for input_name, offset in inputs.items():
        env[input_name] = graph.input(input_name, offset, width=width)
    parser = _Parser(_tokenize(source), graph, env, width)
    assignments = parser.parse_program()
    if outputs is None:
        consumed = set()
        for index, (target, node) in enumerate(assignments):
            for later_name, later_node in assignments[index + 1:]:
                stack = [later_node]
                seen = set()
                while stack:
                    current = stack.pop()
                    if id(current) in seen:
                        continue
                    seen.add(id(current))
                    if current is node and later_node is not node:
                        consumed.add(target)
                    stack.extend(current.operands)
        outputs = [target for target, _ in assignments
                   if target not in consumed]
        # Keep only the last assignment per name.
        outputs = list(dict.fromkeys(outputs))
    if not outputs:
        raise ExpressionError("no outputs (every value was consumed)")
    for output_name in outputs:
        if output_name not in env:
            raise ExpressionError(f"unknown output {output_name!r}")
        graph.output(output_name, env[output_name])
    return SplFunction(graph)
