"""SPL input/output queues (Figure 2(b)).

Each core sharing a fabric has:

* a **staging entry** — 16 bytes wide with per-byte valid bits — that
  ``spl_load`` fills at byte alignments;
* an **input queue** of sealed entries, each tagged with the configuration
  id supplied by ``spl_init``;
* an **output queue** of result words that ``spl_recv``/``spl_store`` pop.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.errors import SplError

#: Bytes per fabric input beat — one 16-cell row's width.
BEAT_BYTES = 16
#: Staging capacity: up to two beats; entries wider than one beat stream
#: into the fabric over consecutive fabric cycles (multi-beat input).
ENTRY_BYTES = 32


class StagingEntry:
    """The in-progress input-queue entry being assembled by spl_load."""

    __slots__ = ("data", "valid", "ready")

    def __init__(self) -> None:
        self.data = bytearray(ENTRY_BYTES)
        self.valid = 0
        self.ready = 0  # cycle at which all staged values have arrived

    def write_word(self, value: int, offset: int, ready: int = 0) -> None:
        if not 0 <= offset <= ENTRY_BYTES - 4:
            raise SplError(f"spl_load offset {offset} out of range")
        self.data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")
        self.valid |= 0xF << offset
        if ready > self.ready:
            self.ready = ready

    @property
    def empty(self) -> bool:
        return self.valid == 0

    def seal(self):
        """Return (data, valid, ready) and clear for the next entry."""
        sealed = (bytes(self.data), self.valid, self.ready)
        self.data = bytearray(ENTRY_BYTES)
        self.valid = 0
        self.ready = 0
        return sealed

    @staticmethod
    def beats(valid: int) -> int:
        """Fabric input beats needed for a sealed entry's valid bytes."""
        return 2 if valid >> BEAT_BYTES else 1

    def snapshot_state(self) -> dict:
        return {"data": self.data.hex(), "valid": self.valid,
                "ready": self.ready}

    def restore_state(self, state: dict) -> None:
        self.data = bytearray.fromhex(state["data"])
        self.valid = state["valid"]
        self.ready = state["ready"]


class SplRequest:
    """One sealed input-queue entry awaiting fabric issue."""

    __slots__ = ("config_id", "data", "valid", "core", "cycle", "dest_slot",
                 "ready")

    def __init__(self, config_id: int, data: bytes, valid: int, core: int,
                 cycle: int, ready: int = 0) -> None:
        self.config_id = config_id
        self.data = data
        self.valid = valid
        self.core = core
        self.cycle = cycle
        self.dest_slot: int = core
        self.ready = ready  # core cycle when all staged data has arrived

    def snapshot_state(self) -> dict:
        return {"config_id": self.config_id, "data": self.data.hex(),
                "valid": self.valid, "core": self.core, "cycle": self.cycle,
                "dest_slot": self.dest_slot, "ready": self.ready}

    @classmethod
    def from_state(cls, state: dict) -> "SplRequest":
        request = cls(state["config_id"], bytes.fromhex(state["data"]),
                      state["valid"], state["core"], state["cycle"],
                      state["ready"])
        request.dest_slot = state["dest_slot"]
        return request


class InputQueue:
    """Per-core FIFO of sealed requests."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Deque[SplRequest] = deque()

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self.entries

    def push(self, request: SplRequest) -> None:
        if self.full:
            raise SplError("input queue overflow")
        self.entries.append(request)

    def head(self) -> Optional[SplRequest]:
        return self.entries[0] if self.entries else None

    def pop(self) -> SplRequest:
        return self.entries.popleft()

    def __len__(self) -> int:
        return len(self.entries)

    def snapshot_state(self) -> dict:
        return {"entries": [r.snapshot_state() for r in self.entries]}

    def restore_state(self, state: dict) -> None:
        self.entries = deque(SplRequest.from_state(r)
                             for r in state["entries"])


class OutputQueue:
    """Per-core FIFO of 32-bit result words."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.words: Deque[int] = deque()

    def space_for(self, n_words: int) -> bool:
        return len(self.words) + n_words <= self.capacity

    def push_words(self, words: List[int]) -> None:
        if not self.space_for(len(words)):
            raise SplError("output queue overflow")
        self.words.extend(words)

    def pop(self) -> Optional[int]:
        if self.words:
            return self.words.popleft()
        return None

    @property
    def empty(self) -> bool:
        return not self.words

    def __len__(self) -> int:
        return len(self.words)

    def snapshot_state(self) -> dict:
        return {"words": list(self.words)}

    def restore_state(self, state: dict) -> None:
        self.words = deque(state["words"])
