"""ReMAP's contribution: the shared SPL fabric, queues, tables, controller."""

from repro.core.compile import ExpressionError, compile_expression
from repro.core.controller import CoreSplPort, SplBinding, SplClusterController
from repro.core.dfg import Dfg, DfgNode, DfgOp, ROW_DEPTH
from repro.core.function import (
    SplFunction, barrier_reduce_function, barrier_token_function,
    identity_function,
)
from repro.core.mapper import (
    RowMapping, initiation_interval, map_dfg, virtual_latency,
)
from repro.core.queues import (
    ENTRY_BYTES, InputQueue, OutputQueue, SplRequest, StagingEntry,
)
from repro.core.manager import FabricManager, attach_fabric_manager
from repro.core.tables import (
    MAX_IN_FLIGHT, BarrierBus, BarrierTable, ThreadToCoreTable,
)

__all__ = [
    "ExpressionError", "compile_expression",
    "FabricManager", "attach_fabric_manager",
    "CoreSplPort", "SplBinding", "SplClusterController",
    "Dfg", "DfgNode", "DfgOp", "ROW_DEPTH",
    "SplFunction", "barrier_reduce_function", "barrier_token_function",
    "identity_function",
    "RowMapping", "initiation_interval", "map_dfg", "virtual_latency",
    "ENTRY_BYTES", "InputQueue", "OutputQueue", "SplRequest", "StagingEntry",
    "MAX_IN_FLIGHT", "BarrierBus", "BarrierTable", "ThreadToCoreTable",
]
