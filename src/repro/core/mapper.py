"""Spatial mapping of dataflow graphs onto SPL rows.

A list scheduler assigns each DFG node to one or more consecutive row
levels (its row depth) subject to the 16-cell row capacity.  The number of
rows a function needs is the highest level used; if that exceeds the rows
physically available to a partition, the function is *virtualized*
(Section II-A / [13]): the same physical rows execute multiple virtual rows,
trading initiation interval for guaranteed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import MappingError
from repro.common.utils import ceil_div
from repro.core.dfg import Dfg, DfgNode


@dataclass
class RowMapping:
    """Result of mapping a DFG: node placements and total row count."""

    dfg_name: str
    rows: int
    placement: Dict[int, int] = field(default_factory=dict)  # node idx -> first row (1-based)
    usage: List[int] = field(default_factory=list)  # cells used per row level
    #: Minimum initiation interval imposed by feedback through delay
    #: registers (1 when the function is feed-forward).
    feedback_ii: int = 1

    def describe(self) -> str:
        lines = [f"{self.dfg_name}: {self.rows} rows"]
        for level, cells in enumerate(self.usage, start=1):
            lines.append(f"  row {level:2d}: {cells:2d}/16 cells")
        return "\n".join(lines)


def _node_heights(dfg: Dfg) -> Dict[int, int]:
    """Critical-path height of each node: rows from it to the furthest
    output (used by the priority strategy)."""
    heights: Dict[int, int] = {node.index: node.depth_rows
                               for node in dfg.nodes}
    for node in reversed(dfg.nodes):
        for operand in node.operands:
            if operand.index < node.index:  # skip delay feedback edges
                heights[operand.index] = max(
                    heights[operand.index],
                    operand.depth_rows + heights[node.index])
    return heights


def _schedule_order(dfg: Dfg, strategy: str) -> List:
    """Node visit order.  "asap" follows construction order; "priority"
    list-schedules by critical-path height (ties by index), which packs
    long chains first and can save rows under cell contention."""
    if strategy == "asap":
        return list(dfg.nodes)
    if strategy != "priority":
        raise MappingError(f"unknown mapping strategy {strategy!r}")
    heights = _node_heights(dfg)
    scheduled = set()
    order = []
    remaining = list(dfg.nodes)
    while remaining:
        ready = [node for node in remaining
                 if all(o.index in scheduled or o.index >= node.index
                        for o in node.operands)]
        if not ready:  # pragma: no cover - validate() prevents this
            raise MappingError(f"{dfg.name}: cyclic non-delay dependence")
        ready.sort(key=lambda node: (-heights[node.index], node.index))
        chosen = ready[0]
        order.append(chosen)
        scheduled.add(chosen.index)
        remaining.remove(chosen)
    return order


def map_dfg(dfg: Dfg, cells_per_row: int = 16,
            strategy: str = "asap") -> RowMapping:
    """Level-schedule ``dfg`` onto rows of ``cells_per_row`` cells.

    Nodes are placed at the earliest level after all operands complete,
    pushed to later levels when a row is out of cells.  Multi-row ops
    (min/max, mul) occupy their cell cost in every level they span.
    ``strategy`` selects the visit order: "asap" (construction order) or
    "priority" (critical-path list scheduling).
    """
    dfg.validate()
    usage: List[int] = []
    finish_level: Dict[int, int] = {}  # node index -> last level (0 for inputs)
    placement: Dict[int, int] = {}

    def cells_free(level: int) -> int:
        while len(usage) < level:
            usage.append(0)
        return cells_per_row - usage[level - 1]

    for node in _schedule_order(dfg, strategy):
        depth = node.depth_rows
        if depth == 0:
            # Inputs/constants/delay registers are available at level 0
            # (delays read last invocation's value from flip-flops).
            finish_level[node.index] = 0
            continue
        cost = node.cell_cost
        if cost > cells_per_row:
            raise MappingError(
                f"{dfg.name}: node {node!r} needs {cost} cells "
                f"(> {cells_per_row} per row)")
        earliest = 1 + max((finish_level[o.index]
                            for o in node.operands
                            if o.index in finish_level), default=0)
        level = earliest
        while True:
            if all(cells_free(level + d) >= cost for d in range(depth)):
                break
            level += 1
            if level > 4096:  # pragma: no cover - defensive
                raise MappingError(f"{dfg.name}: scheduler diverged")
        for d in range(depth):
            usage[level + d - 1] += cost
        placement[node.index] = level
        finish_level[node.index] = level + depth - 1

    rows = len(usage)
    if rows == 0:
        raise MappingError(f"{dfg.name}: function has no computation rows")
    # Feedback constraint: a delay's new value is produced at its source's
    # finish level; the next invocation cannot enter before that.
    feedback_ii = 1
    for node in dfg.nodes:
        if node.op.value == "delay" and node.operands:
            source_level = finish_level[node.operands[0].index]
            feedback_ii = max(feedback_ii, source_level)
    return RowMapping(dfg_name=dfg.name, rows=rows, placement=placement,
                      usage=usage, feedback_ii=feedback_ii)


def verify_mapping(dfg: Dfg, mapping: RowMapping,
                   cells_per_row: int = 16) -> None:
    """Assert a mapping's invariants: dependence order and row capacity.

    Raises MappingError on violation; used by tests and available as a
    post-mapping self-check.
    """
    finish: Dict[int, int] = {}
    for node in dfg.nodes:
        if node.depth_rows == 0:
            finish[node.index] = 0
    for node in dfg.nodes:
        if node.depth_rows == 0:
            continue
        level = mapping.placement.get(node.index)
        if level is None:
            raise MappingError(f"{dfg.name}: node {node!r} unplaced")
        finish[node.index] = level + node.depth_rows - 1
    for node in dfg.nodes:
        if node.depth_rows == 0:
            continue
        level = mapping.placement[node.index]
        for operand in node.operands:
            if operand.index >= node.index:
                continue  # delay feedback: checked via feedback_ii
            if finish[operand.index] >= level:
                raise MappingError(
                    f"{dfg.name}: {node!r} at level {level} before its "
                    f"operand finishes at {finish[operand.index]}")
    usage = [0] * mapping.rows
    for node in dfg.nodes:
        if node.depth_rows == 0:
            continue
        level = mapping.placement[node.index]
        for d in range(node.depth_rows):
            usage[level + d - 1] += node.cell_cost
    for level_index, cells in enumerate(usage):
        if cells > cells_per_row:
            raise MappingError(
                f"{dfg.name}: row {level_index + 1} oversubscribed "
                f"({cells} > {cells_per_row} cells)")


def virtual_latency(function_rows: int, physical_rows: int) -> int:
    """Pipeline latency in fabric cycles (one per virtual row)."""
    if physical_rows < 1:
        raise MappingError("partition has no rows")
    return function_rows


def initiation_interval(function_rows: int, physical_rows: int) -> int:
    """Fabric cycles between successive inputs after virtualization.

    With enough physical rows the pipeline accepts one input per fabric
    cycle (II = 1); a function virtualized over fewer rows accepts one
    input every ceil(v/p) cycles because each physical row multiplexes
    ceil(v/p) virtual rows.
    """
    if physical_rows < 1:
        raise MappingError("partition has no rows")
    if function_rows <= physical_rows:
        return 1
    return ceil_div(function_rows, physical_rows)
