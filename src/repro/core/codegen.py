"""DFG-to-Python closure compiler: the SPL's compiled hot path.

Real CGRA systems configure the fabric once and replay it per token;
interpreting the dataflow graph node-by-node on every staged entry
(:meth:`repro.core.dfg.Dfg.evaluate` with its per-node type dispatch)
models the *values* correctly but pays Python dispatch cost per node per
entry.  :func:`compile_dfg` removes that cost: it assembles the graph
into topologically ordered straight-line Python source, ``exec``'s it
once, and returns closures that evaluate the whole graph with no
per-node interpretation.

Contract (enforced by ``tests/test_codegen.py`` differentially against
the interpreter, and structurally by the ``GEN001`` lint rule):

* **Bit-exact equivalence** — for any inputs/state the compiled
  evaluator returns exactly what ``Dfg.evaluate`` returns, including
  signed-width narrowing (``to_signed`` wrap at every node width),
  DELAY state read/update ordering, and barrier slot-renamed inputs.
* **Same error surface** — missing inputs raise :class:`MappingError`
  with the interpreter's message; the fused entry evaluator raises
  :class:`SplError` for invalid staged bytes exactly like
  ``SplFunction.decode_entry``.
* **No hidden state** — compiled code reads only its arguments; delay
  state lives in the caller's dict, as in the interpreter.

Two closures are produced per graph:

* ``evaluate(inputs, state)`` — drop-in for ``Dfg.evaluate`` (used for
  barrier functions after per-slot decode, and by the differential
  tests).
* ``evaluate_entry(data, valid, state)`` — the regular-function hot
  path: fuses staged-entry decoding (byte extraction + valid-mask
  checks) with the graph body and returns outputs in declared order
  (regular, non-barrier graphs only).

The interpreter remains the fallback: ``REPRO_NO_CODEGEN=1`` keeps
:class:`~repro.core.function.SplFunction` on ``Dfg.evaluate``, and a
graph the generator cannot handle (a future ``DfgOp`` without an
emitter) degrades to interpretation instead of failing the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import CodegenError, MappingError, SplError
from repro.core.dfg import Dfg, DfgNode, DfgOp
from repro.common.utils import to_signed

#: Ops whose result is one of the operand values (never out of operand
#: range), so the narrowing wrap can be skipped when the node is at least
#: as wide as every operand.
_VALUE_PASSING = frozenset((DfgOp.MIN, DfgOp.MAX, DfgOp.SELECT, DfgOp.PASS))

#: Binary arithmetic/logic emitters: node -> Python expression.
_BINARY = {
    DfgOp.ADD: "{a} + {b}",
    DfgOp.SUB: "{a} - {b}",
    DfgOp.MUL: "{a} * {b}",
    DfgOp.AND: "{a} & {b}",
    DfgOp.OR: "{a} | {b}",
    DfgOp.XOR: "{a} ^ {b}",
    DfgOp.SHLV: "{a} << ({b} & 31)",
    DfgOp.SHRV: "{a} >> ({b} & 31)",
}


class CompiledDfg:
    """The compiled evaluators plus their generated source (debug aid)."""

    __slots__ = ("name", "source", "evaluate", "evaluate_entry")

    def __init__(self, name: str, source: str, evaluate,
                 evaluate_entry) -> None:
        self.name = name
        self.source = source
        #: ``evaluate(inputs: Dict[str, int], state) -> Dict[str, int]``
        self.evaluate = evaluate
        #: ``evaluate_entry(data, valid, state) -> List[int]`` or None
        #: for barrier-style graphs (inputs in more than one group).
        self.evaluate_entry = evaluate_entry


def _wrap_lines(var: str, bits: int) -> List[str]:
    """Statements applying ``to_signed(var, bits)`` in place."""
    mask = (1 << bits) - 1
    top = mask >> 1
    return [f"    {var} &= {mask:#x}",
            f"    if {var} > {top:#x}: {var} -= {mask + 1:#x}"]


def _emit_op(node: DfgNode, lines: List[str]) -> None:
    """Append statements computing one non-input, non-delay node."""
    var = f"v{node.index}"
    bits = node.width * 8
    ops = [f"v{operand.index}" for operand in node.operands]
    op = node.op
    if op is DfgOp.CONST:
        lines.append(f"    {var} = {to_signed(node.const, bits)}")
        return
    if op in _BINARY:
        expr = _BINARY[op].format(a=ops[0], b=ops[1])
    elif op is DfgOp.SHL:
        expr = f"{ops[0]} << {node.const}"
    elif op is DfgOp.SHR:
        expr = f"{ops[0]} >> {node.const}"
    elif op is DfgOp.CMPGT:
        lines.append(f"    {var} = 1 if {ops[0]} > {ops[1]} else 0")
        return
    elif op is DfgOp.CMPEQ:
        lines.append(f"    {var} = 1 if {ops[0]} == {ops[1]} else 0")
        return
    elif op is DfgOp.MIN:
        expr = f"{ops[0]} if {ops[0]} < {ops[1]} else {ops[1]}"
    elif op is DfgOp.MAX:
        expr = f"{ops[0]} if {ops[0]} > {ops[1]} else {ops[1]}"
    elif op is DfgOp.SELECT:
        expr = f"{ops[1]} if {ops[0]} else {ops[2]}"
    elif op is DfgOp.PASS:
        expr = f"{ops[0]}"
    else:
        raise CodegenError(f"no emitter for {op}")
    if op in _VALUE_PASSING and \
            node.width >= max(o.width for o in node.operands):
        # Result is one of the operands, already inside this width.
        lines.append(f"    {var} = {expr}")
        return
    lines.append(f"    {var} = ({expr})")
    lines += _wrap_lines(var, bits)


def _emit_delay_read(node: DfgNode, lines: List[str]) -> None:
    var = f"v{node.index}"
    bits = node.width * 8
    lines.append("    if state is None:")
    lines.append(f"        {var} = {to_signed(node.const, bits)}")
    lines.append("    else:")
    lines.append(f"        {var} = state.get({node.index}, {node.const})")
    mask = (1 << bits) - 1
    top = mask >> 1
    lines.append(f"        {var} &= {mask:#x}")
    lines.append(f"        if {var} > {top:#x}: {var} -= {mask + 1:#x}")


def _emit_state_update(dfg: Dfg, delays: List[DfgNode],
                       lines: List[str]) -> None:
    if not delays:
        return
    lines.append("    if state is not None:")
    for node in delays:
        if not node.operands:
            lines.append(
                f"        raise MappingError("
                f"{(dfg.name + ': delay node without a source')!r})")
            continue
        lines.append(
            f"        state[{node.index}] = v{node.operands[0].index}")


def _emit_body(dfg: Dfg, lines: List[str]) -> List[DfgNode]:
    """Emit every op/const/delay-read in index order; returns delays."""
    delays: List[DfgNode] = []
    for node in dfg.nodes:
        if node.op is DfgOp.INPUT:
            continue  # loaded by the caller-specific prologue
        if node.op is DfgOp.DELAY:
            delays.append(node)
            _emit_delay_read(node, lines)
        else:
            _emit_op(node, lines)
    return delays


def _return_expr(dfg: Dfg, as_dict: bool) -> str:
    if as_dict:
        pairs = ", ".join(f"{name!r}: v{node.index}"
                          for name, node in dfg.outputs.items())
        return "    return {%s}" % pairs
    items = ", ".join(f"v{dfg.outputs[name].index}"
                      for name in dfg.output_order)
    return f"    return [{items}]"


def _generic_source(dfg: Dfg) -> str:
    lines = ["def evaluate(inputs, state=None):", "    try:"]
    for name, node in dfg.inputs.items():
        lines.append(f"        v{node.index} = inputs[{name!r}]")
    lines.append("    except KeyError:")
    lines.append("        _missing(inputs)")
    for node in dfg.inputs.values():
        lines += _wrap_lines(f"v{node.index}", node.width * 8)
    delays = _emit_body(dfg, lines)
    _emit_state_update(dfg, delays, lines)
    lines.append(_return_expr(dfg, as_dict=True))
    return "\n".join(lines) + "\n"


def _entry_source(dfg: Dfg) -> Optional[str]:
    """Fused decode+evaluate for single-group (non-barrier) graphs."""
    if any(group for group in dfg.input_groups.values()):
        return None  # slot-grouped inputs arrive as separate entries
    lines = ["def evaluate_entry(data, valid, state=None):"]
    for name, node in dfg.inputs.items():
        offset = dfg.input_offsets[name]
        mask = ((1 << node.width) - 1) << offset
        message = f"{dfg.name}: input {name!r} bytes not valid in entry"
        lines.append(f"    if valid & {mask:#x} != {mask:#x}:")
        lines.append(f"        raise SplError({message!r})")
        lines.append(
            f"    v{node.index} = _from_bytes("
            f"data[{offset}:{offset + node.width}], 'little', signed=True)")
    delays = _emit_body(dfg, lines)
    _emit_state_update(dfg, delays, lines)
    lines.append(_return_expr(dfg, as_dict=False))
    return "\n".join(lines) + "\n"


def _make_missing(dfg: Dfg):
    """The interpreter's missing-input error, reproduced verbatim."""
    declared = frozenset(dfg.inputs)
    name = dfg.name

    def _missing(inputs: Dict[str, int]) -> None:
        missing = set(declared) - set(inputs)
        raise MappingError(f"{name}: missing inputs {sorted(missing)}")

    return _missing


def compile_dfg(dfg: Dfg) -> CompiledDfg:
    """Compile ``dfg`` into straight-line Python closures.

    Raises :class:`CodegenError` when the graph contains an op the
    generator cannot emit; callers treat that as "keep interpreting",
    while the ``GEN001`` lint rule reports it statically.
    """
    generic = _generic_source(dfg)
    entry = _entry_source(dfg)
    source = generic if entry is None else generic + "\n" + entry
    namespace = {
        "MappingError": MappingError,
        "SplError": SplError,
        "_missing": _make_missing(dfg),
        "_from_bytes": int.from_bytes,
    }
    try:
        code = compile(source, f"<dfg:{dfg.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - trusted, self-generated source
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"{dfg.name}: generated source does not "
                           f"compile: {exc}") from exc
    return CompiledDfg(dfg.name, source, namespace["evaluate"],
                       namespace.get("evaluate_entry"))
