"""The SPL cluster controller: sharing, partitioning, issue, and barriers.

One controller manages the fabric shared by the (four) cores of an SPL
cluster.  It runs at the 500 MHz fabric clock (every fourth core cycle) and
implements the behaviour of Section II:

* **Temporal sharing** — each fabric cycle, every partition issues at most
  one request, selected round-robin among the cores assigned to it.
* **Spatial partitioning** — the 24 rows may be split into up to four
  virtual clusters; a function whose mapping needs more rows than its
  partition owns is *virtualized*, raising its initiation interval.
* **Reconfiguration** — a partition switching to a different function
  first drains its pipeline and then spends one fabric cycle per row
  streaming configuration.
* **Destination routing** — requests carry a destination thread; the
  Thread-to-Core Table resolves it and counts in-flight results so the
  consumer cannot be switched out while data is in flight (Section II-B1).
* **Barriers** — barrier-flagged requests wait at the head of the input
  queues until the Barrier Table (fed by the inter-cluster barrier bus)
  reports all participants arrived, then one fabric pass consumes every
  local participant's entry and broadcasts the results (Section II-B2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import SPL_CLOCK_RATIO, SplConfig
from repro.common.errors import ConfigError, SplError
from repro.common.stats import Stats
from repro.core.function import SplFunction
from repro.core.mapper import initiation_interval, virtual_latency
from repro.core.queues import (InputQueue, OutputQueue, SplRequest,
                               StagingEntry)
from repro.core.tables import BarrierBus, BarrierTable, ThreadToCoreTable
from repro.cpu.ports import SplPort
from repro.obs import events as ev
from repro.obs.bus import EventBus


class SplBinding:
    """A (core slot, config id) binding installed by the runtime."""

    __slots__ = ("function", "dest_thread", "barrier_id")

    def __init__(self, function: SplFunction,
                 dest_thread: Optional[int] = None,
                 barrier_id: Optional[int] = None) -> None:
        if function.is_barrier != (barrier_id is not None):
            raise ConfigError("barrier flag and barrier id must agree")
        self.function = function
        self.dest_thread = dest_thread
        self.barrier_id = barrier_id


class _Partition:
    """One virtual cluster of fabric rows."""

    __slots__ = ("index", "rows", "cores", "loaded", "reconfig_until",
                 "next_issue", "events", "rr")

    def __init__(self, index: int, rows: int, cores: List[int]) -> None:
        self.index = index
        self.rows = rows
        self.cores = cores
        self.loaded: Optional[SplFunction] = None
        self.reconfig_until = 0
        self.next_issue = 0
        # (complete_fabric_cycle, [(dest_slot, words, release_inflight)])
        self.events: List[Tuple[int, List[Tuple[int, List[int], bool]]]] = []
        self.rr = 0


class CoreSplPort(SplPort):
    """Core-side view of the shared fabric (one per sharing core)."""

    def __init__(self, controller: "SplClusterController", slot: int) -> None:
        self.controller = controller
        self.slot = slot

    def stage_load(self, value: int, offset: int, cycle: int,
                   ready: int = 0) -> bool:
        return self.controller.stage_load(self.slot, value, offset, cycle,
                                          ready)

    def init(self, config_id: int, cycle: int) -> bool:
        return self.controller.init(self.slot, config_id, cycle)

    def recv(self, cycle: int) -> Optional[int]:
        return self.controller.recv(self.slot, cycle)

    def output_pending(self) -> bool:
        return not self.controller.output_queues[self.slot].empty

    def can_switch_out(self) -> bool:
        return self.controller.can_switch_out(self.slot)

    def on_context_change(self, thread_id: Optional[int],
                          app_id: int) -> None:
        self.controller.table.set_thread(self.slot, thread_id, app_id)

    def stall_kind(self) -> str:
        return self.controller.stall_kind(self.slot)

    def wait_detail(self) -> str:
        """Human-readable description of what this slot is blocked on."""
        controller = self.controller
        iq = controller.input_queues[self.slot]
        oq = controller.output_queues[self.slot]
        parts = [f"spl cluster {controller.cluster_id} slot {self.slot}",
                 f"input queue {len(iq)}/{iq.capacity} entries",
                 f"output queue {len(oq)} words"]
        head = iq.head()
        if head is not None:
            binding = controller.bindings.get((self.slot, head.config_id))
            if binding is not None and binding.barrier_id is not None:
                parts.append(f"head waits on barrier {binding.barrier_id}")
            else:
                parts.append(f"head is config {head.config_id}")
        return ", ".join(parts)


class SplClusterController:
    """Controller for one SPL cluster (fabric + queues + tables)."""

    #: Every counter this controller's stats scope may touch.
    STAT_KEYS = (
        "stage_loads", "input_queue_full", "barrier_arrivals",
        "dest_absent_stalls", "inflight_cap_stalls", "requests",
        "deliveries", "output_queue_stalls", "fabric_full_stalls",
        "reconfigurations", "reconfig_rows", "issues", "rows_evaluated",
        "barrier_releases")

    def __init__(self, cluster_id: int, config: SplConfig,
                 barrier_bus: BarrierBus, stats: Stats,
                 obs: Optional[EventBus] = None) -> None:
        self.cluster_id = cluster_id
        self.config = config
        self.stats = stats
        stats.declare(*self.STAT_KEYS)
        self.obs = obs if obs is not None else EventBus()
        self._src = f"spl{cluster_id}"
        self._now = 0  # last core cycle seen by tick(), for async events
        self.table = ThreadToCoreTable(config.sharers, config.max_ids)
        self.barrier_table = BarrierTable(cluster_id, barrier_bus)
        self.barrier_bus = barrier_bus
        self.staging = [StagingEntry() for _ in range(config.sharers)]
        self.input_queues = [InputQueue(config.input_queue_entries)
                             for _ in range(config.sharers)]
        self.output_queues = [OutputQueue(config.output_queue_words)
                              for _ in range(config.sharers)]
        self.ports = [CoreSplPort(self, slot)
                      for slot in range(config.sharers)]
        #: Optional ``wake(slot)`` callback installed by the machine: fired
        #: on every delivery into a slot's output queue so the fast-forward
        #: scheduler can wake a core it stopped ticking (see DESIGN.md).
        self.wake_cb = None
        self.bindings: Dict[Tuple[int, int], SplBinding] = {}
        self.core_partition = [0] * config.sharers
        self.partitions = [_Partition(0, config.rows,
                                      list(range(config.sharers)))]

    # -- runtime configuration ---------------------------------------------------

    def configure(self, slot: int, config_id: int, function: SplFunction,
                  dest_thread: Optional[int] = None,
                  barrier_id: Optional[int] = None) -> None:
        """Install a configuration binding for ``slot``."""
        if not 0 <= config_id < self.config.max_ids:
            raise ConfigError(f"config id {config_id} out of range")
        self.bindings[(slot, config_id)] = SplBinding(function, dest_thread,
                                                      barrier_id)

    def resident_threads(self) -> Tuple[int, ...]:
        """Thread ids currently mapped to this cluster's slots, sorted.

        Static-verifier introspection: the thread-to-core table is what
        ``spl_init`` consults to resolve a ``dest_thread``."""
        return tuple(sorted(thread for thread in self.table.thread_ids
                            if thread is not None))

    def set_partitions(self, row_counts: List[int],
                       core_assignment: Optional[List[int]] = None) -> None:
        """Spatially partition the fabric (Section II-A).

        ``row_counts`` gives the rows of each virtual cluster;
        ``core_assignment`` maps each core slot to a partition index
        (default: all cores to partition 0).
        """
        if not 1 <= len(row_counts) <= self.config.max_partitions:
            raise ConfigError("bad partition count")
        if sum(row_counts) > self.config.rows:
            raise ConfigError("partition rows exceed fabric rows")
        if any(r < 1 for r in row_counts):
            raise ConfigError("empty partition")
        assignment = core_assignment or [0] * self.config.sharers
        if len(assignment) != self.config.sharers or \
                any(not 0 <= p < len(row_counts) for p in assignment):
            raise ConfigError("bad core-to-partition assignment")
        for partition in self.partitions:
            if partition.events:
                raise SplError("repartition while results in flight")
        self.core_partition = list(assignment)
        self.partitions = [
            _Partition(i, rows,
                       [s for s, p in enumerate(assignment) if p == i])
            for i, rows in enumerate(row_counts)
        ]
        if self.obs.active:
            self.obs.emit(self._now, self._src, ev.PARTITION_SET,
                          rows=list(row_counts), assignment=list(assignment))

    # -- core-port operations -------------------------------------------------------

    def stage_load(self, slot: int, value: int, offset: int,
                   cycle: int, ready: int = 0) -> bool:
        self.staging[slot].write_word(value, offset, ready)
        self.stats.bump("stage_loads")
        if self.obs.active:
            self.obs.emit(cycle, self._src, ev.SPL_STAGE, slot=slot,
                          offset=offset)
        return True

    def init(self, slot: int, config_id: int, cycle: int) -> bool:
        binding = self.bindings.get((slot, config_id))
        if binding is None:
            raise SplError(
                f"cluster {self.cluster_id} core slot {slot}: spl_init with "
                f"unbound config id {config_id}")
        queue = self.input_queues[slot]
        if queue.full:
            self.stats.bump("input_queue_full")
            if self.obs.active:
                self.obs.emit(cycle, self._src, ev.QUEUE_FULL,
                              queue=f"iq{slot}", depth=len(queue))
            return False
        if binding.barrier_id is not None:
            data, valid, ready = self.staging[slot].seal()
            request = SplRequest(config_id, data, valid, slot, cycle, ready)
            queue.push(request)
            thread_id = self.table.thread_ids[slot]
            if thread_id is None:
                raise SplError("barrier arrival from a core with no thread")
            self.barrier_table.arrive(binding.barrier_id, thread_id, cycle,
                                      app_id=self.table.app_ids[slot])
            self.stats.bump("barrier_arrivals")
            if self.obs.active:
                self.obs.emit(cycle, self._src, ev.QUEUE_PUSH,
                              queue=f"iq{slot}", depth=len(queue))
                self.obs.emit(cycle, self._src, ev.BARRIER_ARRIVE,
                              barrier=binding.barrier_id, thread=thread_id,
                              slot=slot)
            return True
        if binding.dest_thread is not None:
            dest_slot = self.table.lookup(binding.dest_thread)
            if dest_slot is None:
                # Destination thread not resident: refuse to issue
                # (Section II-B1) so the producer cannot flood the fabric.
                self.stats.bump("dest_absent_stalls")
                if self.obs.active:
                    self.obs.emit(cycle, self._src, ev.DEST_STALL,
                                  slot=slot, reason="dest_absent")
                return False
        else:
            dest_slot = slot
        if not self.table.try_reserve(dest_slot):
            self.stats.bump("inflight_cap_stalls")
            if self.obs.active:
                self.obs.emit(cycle, self._src, ev.DEST_STALL, slot=slot,
                              reason="inflight_cap")
            return False
        data, valid, ready = self.staging[slot].seal()
        request = SplRequest(config_id, data, valid, slot, cycle, ready)
        request.dest_slot = dest_slot
        queue.push(request)
        self.stats.bump("requests")
        if self.obs.active:
            self.obs.emit(cycle, self._src, ev.QUEUE_PUSH,
                          queue=f"iq{slot}", depth=len(queue))
        return True

    def recv(self, slot: int, cycle: int) -> Optional[int]:
        value = self.output_queues[slot].pop()
        if value is not None and self.obs.active:
            self.obs.emit(cycle, self._src, ev.QUEUE_POP,
                          queue=f"oq{slot}",
                          depth=len(self.output_queues[slot]))
        return value

    def stall_kind(self, slot: int) -> str:
        """See :meth:`repro.cpu.ports.SplPort.stall_kind`."""
        head = self.input_queues[slot].head()
        if head is not None:
            binding = self.bindings.get((slot, head.config_id))
            if binding is not None and binding.barrier_id is not None:
                return "barrier"
        return "queue"

    def can_switch_out(self, slot: int) -> bool:
        return (self.table.can_switch_out(slot)
                and self.staging[slot].empty
                and self.input_queues[slot].empty)

    # -- snapshot contract (DESIGN.md §8) ----------------------------------------------

    def _binding_key_of(self, function: SplFunction) -> Optional[list]:
        """Stable identifier for a loaded function: the first (sorted)
        binding key that references this exact instance.  Setup recreates
        the same instance-sharing structure on the restore target, so the
        key resolves back to the equivalent object."""
        for key in sorted(self.bindings):
            if self.bindings[key].function is function:
                return list(key)
        raise SplError("loaded function has no binding (cannot snapshot)")

    def snapshot_state(self) -> dict:
        """Mutable controller state.  Bindings, ports, and the wake
        callback are runtime configuration: they are recreated by workload
        setup / machine construction, not serialized.  Stateful function
        instances (DELAY registers) are captured per binding key."""
        return {
            "now": self._now,
            "table": self.table.snapshot_state(),
            "barrier_table": self.barrier_table.snapshot_state(),
            "staging": [entry.snapshot_state() for entry in self.staging],
            "input_queues": [q.snapshot_state() for q in self.input_queues],
            "output_queues": [q.snapshot_state() for q in self.output_queues],
            "core_partition": list(self.core_partition),
            "partitions": [{
                "index": p.index,
                "rows": p.rows,
                "cores": list(p.cores),
                "loaded": (None if p.loaded is None
                           else self._binding_key_of(p.loaded)),
                "reconfig_until": p.reconfig_until,
                "next_issue": p.next_issue,
                "events": [[complete,
                            [[slot, list(words), bool(release)]
                             for slot, words, release in deliveries]]
                           for complete, deliveries in p.events],
                "rr": p.rr,
            } for p in self.partitions],
            # DELAY-register state keyed by DFG node index (ints, so JSON
            # needs a pair list rather than a dict).
            "function_state": [
                [list(key),
                 sorted(self.bindings[key].function.state.items())]
                for key in sorted(self.bindings)],
        }

    def restore_state(self, state: dict) -> None:
        self._now = state["now"]
        self.table.restore_state(state["table"])
        self.barrier_table.restore_state(state["barrier_table"])
        for entry, entry_state in zip(self.staging, state["staging"]):
            entry.restore_state(entry_state)
        for queue, queue_state in zip(self.input_queues,
                                      state["input_queues"]):
            queue.restore_state(queue_state)
        for queue, queue_state in zip(self.output_queues,
                                      state["output_queues"]):
            queue.restore_state(queue_state)
        self.core_partition = list(state["core_partition"])
        self.partitions = []
        for record in state["partitions"]:
            partition = _Partition(record["index"], record["rows"],
                                   list(record["cores"]))
            if record["loaded"] is not None:
                key = tuple(record["loaded"])
                if key not in self.bindings:
                    raise SplError(f"snapshot references unbound config "
                                   f"{key}; was setup re-run?")
                partition.loaded = self.bindings[key].function
            partition.reconfig_until = record["reconfig_until"]
            partition.next_issue = record["next_issue"]
            partition.events = [
                (complete, [(slot, list(words), bool(release))
                            for slot, words, release in deliveries])
                for complete, deliveries in record["events"]]
            partition.rr = record["rr"]
            self.partitions.append(partition)
        for key, fn_state in state["function_state"]:
            binding = self.bindings.get(tuple(key))
            if binding is None:
                raise SplError(f"snapshot references unbound config {key}")
            binding.function.state.clear()
            binding.function.state.update(
                {index: value for index, value in fn_state})

    # -- fabric clock ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        self._now = cycle
        if cycle % SPL_CLOCK_RATIO:
            return
        fnow = cycle // SPL_CLOCK_RATIO
        for partition in self.partitions:
            self._deliver(partition, fnow)
            if not self._try_issue_barriers(partition, fnow, cycle):
                self._try_issue(partition, fnow, cycle)

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest core cycle > ``now`` at which ticking this controller
        can change state or bump a counter (fast-forward contract,
        DESIGN.md).  A bound may be *early* — the machine then just ticks a
        few no-op fabric cycles — but must never be late: every skipped
        fabric tick has to be a provable no-op.
        """
        ratio = SPL_CLOCK_RATIO
        for queue in self.output_queues:
            if not queue.empty:
                # A blocked core may consume this data on its very next
                # tick (recv happens core-side, before our tick).
                return now + 1
        best: Optional[int] = None
        next_fabric = (now // ratio + 1) * ratio
        fnow = now // ratio

        def consider(candidate: int) -> None:
            nonlocal best
            if best is None or candidate < best:
                best = candidate

        for partition in self.partitions:
            if not partition.events:
                continue
            if (fnow >= partition.reconfig_until and partition.cores
                    and len(partition.events) >= partition.rows):
                # fabric_full_stalls is charged on every fabric tick
                consider(next_fabric)
            for complete, _ in partition.events:
                t = complete * ratio
                consider(t if t > now else now + 1)
        for slot in range(self.config.sharers):
            request = self.input_queues[slot].head()
            if request is None:
                continue
            binding = self.bindings.get((slot, request.config_id))
            if binding is None:
                return now + 1  # let the tick raise, exactly like naive
            if binding.barrier_id is not None:
                t = self.barrier_table.next_ready_cycle(
                    binding.barrier_id, now)
                if t is None:
                    continue  # a participant is missing: its arrival is
                    # driven by (and bounded through) that core's events
                partition = self.partitions[
                    self._barrier_partition(binding.barrier_id)]
                t = max(t, request.ready,
                        partition.reconfig_until * ratio, now + 1)
                if partition.loaded is binding.function:
                    t = max(t, partition.next_issue * ratio)
                consider(-(-t // ratio) * ratio)
                continue
            partition = self.partitions[self.core_partition[slot]]
            t = max(request.ready, now + 1)
            if partition.loaded is binding.function:
                t = max(t, partition.reconfig_until * ratio,
                        partition.next_issue * ratio)
            elif not partition.events:
                t = max(t, partition.reconfig_until * ratio)
            # else: the partition must drain before reconfiguring; its
            # pending events (above) bound the wake-up.
            consider(-(-t // ratio) * ratio)
        return best

    def _try_issue_barriers(self, partition: _Partition, fnow: int,
                            cycle: int) -> bool:
        """Attempt barrier issue on this partition; True if it consumed the
        partition's issue slot this fabric cycle.

        Barrier heads may sit on any sharer core's queue, regardless of
        that core's partition assignment: the barrier executes on its
        designated partition while gathering all local participants'
        entries.
        """
        if fnow < partition.reconfig_until or \
                len(partition.events) >= partition.rows:
            return False
        seen = set()
        for slot in range(self.config.sharers):
            request = self.input_queues[slot].head()
            if request is None or request.ready > cycle:
                continue
            binding = self.bindings[(slot, request.config_id)]
            barrier_id = binding.barrier_id
            if barrier_id is None or barrier_id in seen:
                continue
            seen.add(barrier_id)
            if self._barrier_partition(barrier_id) != partition.index:
                continue
            if self._issue_barrier(partition, slot, binding, fnow, cycle):
                return True
        return False

    def _deliver(self, partition: _Partition, fnow: int) -> None:
        if not partition.events:
            return
        remaining = []
        for complete, deliveries in partition.events:
            if complete > fnow:
                remaining.append((complete, deliveries))
                continue
            if all(self.output_queues[slot].space_for(len(words))
                   for slot, words, _ in deliveries):
                for slot, words, release in deliveries:
                    self.output_queues[slot].push_words(words)
                    if release:
                        self.table.release(slot)
                    if self.wake_cb is not None:
                        self.wake_cb(slot)
                    if self.obs.active:
                        self.obs.emit(self._now, self._src, ev.QUEUE_PUSH,
                                      queue=f"oq{slot}",
                                      depth=len(self.output_queues[slot]))
                self.stats.bump("deliveries")
                if self.obs.active:
                    self.obs.emit(self._now, self._src, ev.SPL_DELIVER,
                                  partition=partition.index,
                                  slots=[slot for slot, _, _ in deliveries])
            else:
                self.stats.bump("output_queue_stalls")
                if self.obs.active:
                    self.obs.emit(self._now, self._src, ev.QUEUE_STALL,
                                  partition=partition.index)
                remaining.append((complete, deliveries))
        partition.events = remaining

    def _try_issue(self, partition: _Partition, fnow: int,
                   cycle: int) -> None:
        if fnow < partition.reconfig_until or not partition.cores:
            return
        if len(partition.events) >= partition.rows:
            self.stats.bump("fabric_full_stalls")
            return
        n = len(partition.cores)
        for step in range(n):
            slot = partition.cores[(partition.rr + step) % n]
            request = self.input_queues[slot].head()
            if request is None or request.ready > cycle:
                continue
            binding = self.bindings[(slot, request.config_id)]
            function = binding.function
            if binding.barrier_id is not None:
                continue  # handled by _try_issue_barriers
            if partition.loaded is not function:
                if partition.events:
                    return  # drain before reconfiguring
                self._reconfigure(partition, function, fnow)
                return
            if fnow < partition.next_issue:
                return  # initiation interval not yet satisfied
            self._issue_regular(partition, slot, function, fnow)
            partition.rr = (partition.rr + step + 1) % n
            return

    def _reconfigure(self, partition: _Partition, function: SplFunction,
                     fnow: int) -> None:
        rows_to_load = min(function.rows, partition.rows)
        partition.reconfig_until = fnow + \
            rows_to_load * self.config.config_cycles_per_row
        partition.loaded = function
        partition.next_issue = partition.reconfig_until
        self.stats.bump("reconfigurations")
        self.stats.bump("reconfig_rows", rows_to_load)
        if self.obs.active:
            self.obs.emit(self._now, self._src, ev.SPL_RECONFIG,
                          partition=partition.index, function=function.name,
                          rows=rows_to_load,
                          fcycles=partition.reconfig_until - fnow)

    def _issue_regular(self, partition: _Partition, slot: int,
                       function: SplFunction, fnow: int) -> None:
        request = self.input_queues[slot].pop()
        if self.wake_cb is not None:
            # The pop can re-classify the slot's wait (stall_kind reads the
            # queue head): wake the core if it was elided.
            self.wake_cb(slot)
        outputs = function.evaluate_entry(request.data, request.valid)
        beats = StagingEntry.beats(request.valid)
        latency = virtual_latency(function.rows, partition.rows) + beats
        complete = fnow + latency
        partition.events.append(
            (complete, [(request.dest_slot, outputs, True)]))
        interval = max(initiation_interval(function.rows, partition.rows),
                       beats, function.feedback_ii)
        partition.next_issue = fnow + interval
        self.stats.bump("issues")
        self.stats.bump("rows_evaluated", function.rows)
        if self.obs.active:
            self.obs.emit(self._now, self._src, ev.QUEUE_POP,
                          queue=f"iq{slot}",
                          depth=len(self.input_queues[slot]))
            self.obs.emit(self._now, self._src, ev.SPL_ISSUE,
                          partition=partition.index, slot=slot,
                          function=function.name, rows=function.rows,
                          latency=latency, interval=interval)

    def _issue_barrier(self, partition: _Partition, slot: int,
                       binding: SplBinding, fnow: int, cycle: int) -> bool:
        barrier_id = binding.barrier_id
        if not self.barrier_table.ready(barrier_id, cycle):
            return False
        local_slots = self._local_participants(barrier_id)
        if slot not in local_slots:
            raise SplError(f"barrier {barrier_id}: issuing core not a "
                           f"registered participant")
        # Every local participant must have its barrier entry at the head
        # of its input queue, in this partition.
        heads = {}
        for participant in local_slots:
            head = self.input_queues[participant].head()
            if head is None or head.ready > cycle:
                return False
            head_binding = self.bindings[(participant, head.config_id)]
            if head_binding.barrier_id != barrier_id:
                return False
            heads[participant] = head
        function = binding.function
        if partition.loaded is not function:
            if partition.events:
                return False
            self._reconfigure(partition, function, fnow)
            return True  # reconfiguration consumed this fabric cycle
        if fnow < partition.next_issue:
            return False
        for participant in local_slots:
            if not self.table.try_reserve(participant):
                raise SplError("in-flight counter saturated at barrier")
        entries = {}
        for slot_index, participant in enumerate(sorted(local_slots)):
            head = self.input_queues[participant].pop()
            entries[slot_index] = (head.data, head.valid)
            if self.wake_cb is not None:
                # Issuing the barrier flips stall_kind from "barrier" to
                # "queue" for every participant: wake any elided waiter.
                self.wake_cb(participant)
        outputs = function.evaluate_barrier(entries)
        latency = virtual_latency(function.rows, partition.rows) + 1
        complete = fnow + latency
        deliveries = [(participant, list(outputs), True)
                      for participant in sorted(local_slots)]
        partition.events.append((complete, deliveries))
        partition.next_issue = fnow + initiation_interval(
            function.rows, partition.rows)
        self.barrier_table.release(barrier_id)
        self.stats.bump("barrier_releases")
        self.stats.bump("rows_evaluated", function.rows)
        if self.obs.active:
            for participant in sorted(local_slots):
                self.obs.emit(self._now, self._src, ev.QUEUE_POP,
                              queue=f"iq{participant}",
                              depth=len(self.input_queues[participant]))
            self.obs.emit(self._now, self._src, ev.SPL_ISSUE,
                          partition=partition.index, slot=slot,
                          function=function.name, rows=function.rows,
                          latency=latency, barrier=barrier_id)
            self.obs.emit(self._now, self._src, ev.BARRIER_RELEASE,
                          barrier=barrier_id,
                          slots=sorted(local_slots))
        return True

    def _barrier_partition(self, barrier_id: int) -> int:
        """Partition on which a barrier executes: the lowest local
        participant's partition (a fixed, deterministic choice)."""
        local = self._local_participants(barrier_id)
        if not local:
            return 0
        return self.core_partition[min(local)]

    def _local_participants(self, barrier_id: int) -> List[int]:
        slots = []
        for thread_id in self.barrier_bus.participants(barrier_id):
            slot = self.table.lookup(thread_id)
            if slot is not None:
                slots.append(slot)
        return slots
