"""Dynamic fabric management (the paper's [32]: "intelligent fabric
management ... can increase fabric utilization").

The :class:`FabricManager` watches an SPL cluster at run time and adapts
its spatial partitioning to the offered load:

* when the active threads all run the **same** configuration, one shared
  full-width partition maximizes throughput (II is lowest with the most
  rows, and round-robin sharing costs little);
* when they run **different** configurations, temporal sharing would
  thrash the fabric with reconfigurations — the manager instead gives each
  function group a private partition.

Decisions are re-evaluated every ``interval`` cycles from the head of each
core's input queue; repartitioning is only applied at quiescent points
(the controller refuses to repartition with results in flight, in which
case the manager retries at the next interval).  Section II's footnote —
"the virtualization of the fabric makes this dynamic division transparent
to software" — is literal here: programs never change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import SplError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController


class FabricManager:
    """Adaptive spatial partitioning for one SPL cluster."""

    def __init__(self, controller: SplClusterController, stats: Stats,
                 interval: int = 2048) -> None:
        self.controller = controller
        self.stats = stats
        stats.declare("repartitions", "repartition_deferred")
        self.interval = interval
        self._next_decision = interval
        self._current_plan: Optional[Tuple] = None

    # -- machine hook -------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if cycle < self._next_decision:
            return
        self._next_decision = cycle + self.interval
        plan = self._decide()
        if plan is None or plan == self._current_plan:
            return
        row_counts, assignment = plan
        try:
            self.controller.set_partitions(list(row_counts),
                                           list(assignment))
        except SplError:
            # Results in flight: retry at the next interval.
            self.stats.bump("repartition_deferred")
            return
        self._current_plan = plan
        self.stats.bump("repartitions")

    # -- policy ---------------------------------------------------------------------

    def _demand(self) -> Dict[int, str]:
        """Map each core slot with pending work to its head function."""
        demand = {}
        for slot, queue in enumerate(self.controller.input_queues):
            request = queue.head()
            if request is None:
                continue
            binding = self.controller.bindings.get(
                (slot, request.config_id))
            if binding is None:
                continue
            demand[slot] = binding.function.name
        return demand

    def _decide(self) -> Optional[Tuple]:
        demand = self._demand()
        if not demand:
            return None
        sharers = self.controller.config.sharers
        rows = self.controller.config.rows
        groups: Dict[str, List[int]] = {}
        for slot, function_name in demand.items():
            groups.setdefault(function_name, []).append(slot)
        if len(groups) <= 1:
            # Homogeneous demand: one shared full-width partition.
            return ((rows,), tuple([0] * sharers))
        n_groups = min(len(groups), self.controller.config.max_partitions)
        if rows % n_groups:
            n_groups = 2 if rows % 2 == 0 else 1
        if n_groups <= 1:
            return ((rows,), tuple([0] * sharers))
        rows_each = rows // n_groups
        assignment = [0] * sharers
        for index, (_, slots) in enumerate(sorted(groups.items())):
            partition = min(index, n_groups - 1)
            for slot in slots:
                assignment[slot] = partition
        return (tuple([rows_each] * n_groups), tuple(assignment))


def attach_fabric_manager(machine, cluster_index: int = 0,
                          interval: int = 2048) -> FabricManager:
    """Attach adaptive partitioning to one of a machine's SPL clusters."""
    cluster = machine.clusters[cluster_index]
    if cluster.controller is None:
        raise SplError(f"cluster {cluster_index} has no SPL fabric")
    manager = FabricManager(cluster.controller,
                            machine.stats.child(f"mgr{cluster_index}"),
                            interval=interval)
    machine.add_controller(manager)
    return manager
