"""Program-structure rules.

* **CFG001** (warning) — instructions no path can reach (dead code left
  behind by an edit, or a branch that can never be taken).  Contiguous
  unreachable runs are collapsed into one diagnostic.
* **CFG002** (error) — some reachable path runs past the last instruction
  without a ``halt``; the simulator faults on the out-of-range pc.
* **LBL001** (note) / **LBL002** (warning) — label hygiene reported by the
  assembler (placed-but-unreferenced, fresh-but-never-placed) and turned
  into diagnostics here.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.cfg import Cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.isa.program import Program

#: Assembler label findings are (rule, message) pairs on the program; the
#: severities are fixed per rule.
_LABEL_SEVERITY = {
    "LBL001": Severity.NOTE,
    "LBL002": Severity.WARNING,
}


def _runs(pcs: List[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted pc list into inclusive (first, last) runs."""
    runs: List[Tuple[int, int]] = []
    for pc in pcs:
        if runs and pc == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], pc)
        else:
            runs.append((pc, pc))
    return runs


def check_structure(cfg: Cfg, unit: str = "") -> List[Diagnostic]:
    program = cfg.program
    diagnostics: List[Diagnostic] = []

    dead = sorted(set(range(len(program.instructions))) -
                  cfg.reachable_pcs())
    for first, last in _runs(dead):
        span = f"pc {first}" if first == last else f"pc {first}..{last}"
        count = last - first + 1
        diagnostics.append(Diagnostic(
            rule="CFG001", severity=Severity.WARNING,
            message=f"{count} unreachable instruction"
                    f"{'s' if count > 1 else ''} ({span})",
            unit=unit, program=program.name, pc=first))

    if cfg.falls_off_end():
        diagnostics.append(Diagnostic(
            rule="CFG002", severity=Severity.ERROR,
            message="control can fall past the last instruction without "
                    "a halt (simulator would fault on pc out of range)",
            unit=unit, program=program.name,
            pc=len(program.instructions) - 1))

    return diagnostics


def label_diagnostics(program: Program, unit: str = "") -> List[Diagnostic]:
    """Convert assembler label findings into diagnostics (LBL001/LBL002)."""
    diagnostics: List[Diagnostic] = []
    for rule, message in getattr(program, "label_diagnostics", []):
        diagnostics.append(Diagnostic(
            rule=rule, severity=_LABEL_SEVERITY[rule], message=message,
            unit=unit, program=program.name))
    return diagnostics
