"""Whole-spec and registry-wide lint orchestration.

:func:`lint_program` checks one assembled program in isolation;
:func:`lint_spec` builds the spec's machine, runs the workload *setup*
(no simulation), and checks every thread against the SPL bindings,
partitions, and barriers actually installed; :func:`lint_registry`
sweeps every registered benchmark x variant plus the SPL function
library.  Cross-thread rules computed here from per-thread summaries:

* **SPL004** (error) — a thread's popped-word count provably differs
  from the words sent to it (or barrier arrivals are unbalanced).
* **SPL005** (error) — a thread pops words but nothing is ever sent to
  it; the pop would block forever.
* **SPL006** (warning) — words are sent to a thread that never pops.
* **SPEC001** (error) — a registered spec factory raised during the
  sweep (reported instead of aborting it).

:func:`lint_spec` additionally runs the whole-machine concurrency
verifier (**CON001-005**, :mod:`repro.analysis.concurrency`) over the
inter-thread communication graph and checks the spec's ``max_cycles``
budget against the static performance lower bound (**BND002**,
:mod:`repro.analysis.bounds`).  :func:`spec_summaries` exposes the
shared build-and-summarize front half to those passes.
"""

from __future__ import annotations

import traceback
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import Cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.mapping import (check_shared_state, lint_function)
from repro.analysis.regs import check_registers
from repro.analysis.spl import (IntSet, SplContext, SplSummary, ZERO,
                                analyze_spl, iexact, imul, iplus)
from repro.analysis.structure import check_structure, label_diagnostics
from repro.baselines.comm_network import CommPort, DedicatedCommController
from repro.core.controller import CoreSplPort, SplClusterController
from repro.core.dfg import DfgOp
from repro.core.function import (SplFunction, barrier_reduce_function,
                                 barrier_token_function, identity_function)
from repro.isa.program import Program, ThreadSpec
from repro.system.machine import Machine
from repro.workloads.base import RunSpec


def _input_bytes(function: SplFunction,
                 names: Optional[Sequence[str]] = None) -> frozenset:
    """Staging-entry byte offsets a function decodes for ``names``."""
    dfg = function.dfg
    names = list(dfg.inputs) if names is None else names
    covered: Set[int] = set()
    for name in names:
        offset = dfg.input_offsets[name]
        covered.update(range(offset, offset + dfg.inputs[name].width))
    return frozenset(covered)


def _slot_groups(function: SplFunction) -> int:
    """Number of per-participant input groups of a barrier function."""
    prefixes = {name.split("_", 1)[0] for name in function.dfg.inputs
                if name.startswith("s") and "_" in name}
    return len(prefixes)


def lint_program(program: Program, spec: Optional[ThreadSpec] = None,
                 context: Optional[SplContext] = None,
                 unit: str = "") -> List[Diagnostic]:
    """Lint one program in isolation (structure, labels, registers, SPL).

    Without a :class:`SplContext` the binding-dependent SPL rules are
    skipped; cross-thread balance needs :func:`lint_spec`.
    """
    cfg = Cfg(program)
    diagnostics = label_diagnostics(program, unit)
    diagnostics += check_structure(cfg, unit)
    diagnostics += check_registers(spec or ThreadSpec(program, 0), cfg, unit)
    spl_diags, _ = analyze_spl(program, cfg, context, unit)
    diagnostics += spl_diags
    return diagnostics


# -- spec-level lint ----------------------------------------------------------


def _local_participants(controller: SplClusterController,
                        barrier_id: int) -> List[int]:
    # Non-raising lookup: an unregistered barrier is a CON003 finding,
    # not a reason for the lint pass itself to fault.
    registered = controller.barrier_bus.registered_participants(barrier_id)
    slots = []
    for thread_id in registered or ():
        slot = controller.table.lookup(thread_id)
        if slot is not None:
            slots.append(slot)
    return sorted(slots)


def _fabric_context(controller: SplClusterController,
                    slot: int) -> SplContext:
    required: Dict[int, frozenset] = {}
    known = []
    for (bound_slot, config), binding in controller.bindings.items():
        if bound_slot != slot:
            continue
        known.append(config)
        function = binding.function
        if binding.barrier_id is not None:
            local = _local_participants(controller, binding.barrier_id)
            if slot in local:
                names = function.slot_input_names(local.index(slot))
                required[config] = _input_bytes(function, names)
        else:
            required[config] = _input_bytes(function)
    return SplContext(port_kind="fabric", known_configs=frozenset(known),
                      required_bytes=required)


def _comm_context(controller: DedicatedCommController,
                  slot: int) -> SplContext:
    known = []
    sends = []
    for (bound_slot, config), binding in controller.bindings.items():
        if bound_slot != slot:
            continue
        known.append(config)
        if binding.dest_thread is not None:
            sends.append(config)
    return SplContext(port_kind="comm", known_configs=frozenset(known),
                      comm_send_configs=frozenset(sends))


class _Flows:
    """Accumulates words-delivered-to-thread counts and barrier arrivals."""

    def __init__(self) -> None:
        self.incoming: Dict[int, IntSet] = {}
        self.unknown: Set[int] = set()
        # key -> {thread: (arrivals, words per release)}
        self.barriers: Dict[Tuple, Dict[int, Tuple[IntSet, int]]] = {}

    def add(self, thread_id: int, words: IntSet) -> None:
        if words is None:
            self.unknown.add(thread_id)
            return
        self.incoming[thread_id] = iplus(
            self.incoming.get(thread_id, ZERO), words)

    def arrive(self, key: Tuple, thread_id: int, count: IntSet,
               words_per_release: int) -> None:
        per_thread = self.barriers.setdefault(key, {})
        previous, _ = per_thread.get(thread_id, (ZERO, words_per_release))
        per_thread[thread_id] = (iplus(previous, count), words_per_release)

    def settle_barriers(self, unit: str) -> List[Diagnostic]:
        """Fold arrivals into incoming words; flag unbalanced barriers."""
        diagnostics = []
        for key, per_thread in sorted(self.barriers.items(),
                                      key=lambda kv: str(kv[0])):
            counts = {thread: iexact(arrivals)
                      for thread, (arrivals, _) in per_thread.items()}
            if any(count is None for count in counts.values()):
                for thread in per_thread:
                    self.unknown.add(thread)
                continue
            if len(set(counts.values())) > 1:
                detail = ", ".join(
                    f"thread {thread}: {count}"
                    for thread, count in sorted(counts.items()))
                diagnostics.append(Diagnostic(
                    rule="SPL004", severity=Severity.ERROR,
                    message=f"barrier {key[-1]} arrivals are unbalanced "
                            f"({detail}); the barrier would never release",
                    unit=unit))
                for thread in per_thread:
                    self.unknown.add(thread)
                continue
            for thread, (arrivals, words_per_release) in per_thread.items():
                self.add(thread, imul(arrivals,
                                      frozenset({words_per_release})))
        return diagnostics


def _collect_flows(machine: Machine, summaries: Dict[int, SplSummary],
                   unit: str) -> Tuple[_Flows, List[Diagnostic]]:
    flows = _Flows()
    for thread_id, summary in summaries.items():
        core = machine.cores[machine.thread_core[thread_id]]
        port = core.spl_port
        if isinstance(port, CoreSplPort):
            controller = port.controller
            for config, count in summary.issues.items():
                binding = controller.bindings.get((port.slot, config))
                if binding is None:
                    continue  # SPL001 already reported
                function = binding.function
                if binding.barrier_id is not None:
                    flows.arrive(("fabric", binding.barrier_id), thread_id,
                                 count, function.n_outputs)
                else:
                    dest = binding.dest_thread
                    flows.add(thread_id if dest is None else dest,
                              imul(count,
                                   frozenset({function.n_outputs})))
        elif isinstance(port, CommPort):
            controller = port.controller
            for config, count in summary.issues.items():
                binding = controller.bindings.get((port.slot, config))
                if binding is None:
                    continue
                if binding.barrier_id is not None:
                    # Each release hands every participant one token word.
                    flows.arrive(("comm", id(controller),
                                  binding.barrier_id), thread_id, count, 1)
                else:
                    words = summary.init_words.get(config)
                    flows.add(binding.dest_thread, imul(count, words))
    return flows, flows.settle_barriers(unit)


def _balance_diagnostics(summaries: Dict[int, SplSummary], flows: _Flows,
                         unit: str) -> List[Diagnostic]:
    diagnostics = []
    threads = set(summaries) | set(flows.incoming) | flows.unknown
    for thread_id in sorted(threads):
        summary = summaries.get(thread_id, SplSummary())
        pops = summary.pops
        if thread_id in flows.unknown:
            continue
        incoming = flows.incoming.get(thread_id, ZERO)
        received = iexact(incoming)
        popped = iexact(pops)
        may_pop = pops is None or any(v > 0 for v in pops)
        if received == 0 and may_pop:
            diagnostics.append(Diagnostic(
                rule="SPL005", severity=Severity.ERROR,
                message=f"thread {thread_id} pops SPL words but no binding "
                        f"ever delivers to it; the pop would block forever",
                unit=unit))
        elif received is not None and received > 0 and popped == 0:
            diagnostics.append(Diagnostic(
                rule="SPL006", severity=Severity.WARNING,
                message=f"{received} words are delivered to thread "
                        f"{thread_id} but its program never pops them",
                unit=unit))
        elif received is not None and popped is not None and \
                received != popped:
            diagnostics.append(Diagnostic(
                rule="SPL004", severity=Severity.ERROR,
                message=f"thread {thread_id} pops {popped} SPL words but "
                        f"{received} are delivered to it "
                        f"({'starves' if popped > received else 'leaks'})",
                unit=unit))
    return diagnostics


def _mapping_diagnostics(machine: Machine, unit: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for cluster in machine.clusters:
        controller = cluster.controller
        if controller is None:
            continue
        seen: Set[Tuple[int, int]] = set()
        for (slot, _config), binding in sorted(controller.bindings.items()):
            function = binding.function
            if binding.barrier_id is not None:
                local = _local_participants(controller, binding.barrier_id)
                partition = controller.core_partition[local[0]] if local \
                    else 0
                groups = _slot_groups(function)
                if local and groups != len(local) and \
                        ("width", binding.barrier_id) not in seen:
                    seen.add(("width", binding.barrier_id))
                    diagnostics.append(Diagnostic(
                        rule="SPL003", severity=Severity.ERROR,
                        message=f"barrier function has {groups} slot-input "
                                f"groups but barrier {binding.barrier_id} "
                                f"has {len(local)} local participants",
                        unit=unit, dfg=function.dfg.name))
            else:
                partition = controller.core_partition[slot]
            rows = controller.partitions[partition].rows
            key = (id(function), rows)
            if key in seen:
                continue
            seen.add(key)
            diagnostics += lint_function(
                function, unit, partition_rows=(rows,),
                cells_per_row=controller.config.cells_per_row)
        diagnostics += check_shared_state(
            {key: binding.function
             for key, binding in controller.bindings.items()}, unit)
    return diagnostics


def spec_summaries(spec: RunSpec, unit: str = "") -> Tuple[
        Machine, Dict[int, Program], Dict[int, Cfg],
        Dict[int, SplSummary], List[Diagnostic]]:
    """Build a spec's machine and analyze every thread (no simulation).

    Shared front half of :func:`lint_spec` and
    :func:`repro.analysis.bounds.compute_bounds`: constructs the machine,
    runs the workload *setup* hook, and returns per-thread programs,
    CFGs, and SPL summaries keyed by thread id, plus the per-thread
    diagnostics accumulated along the way.
    """
    unit = unit or spec.name
    machine = Machine(spec.system)
    machine.load(spec.workload)

    diagnostics: List[Diagnostic] = []
    linted_programs: Set[int] = set()
    shared_cfgs: Dict[int, Cfg] = {}
    programs: Dict[int, Program] = {}
    cfgs: Dict[int, Cfg] = {}
    summaries: Dict[int, SplSummary] = {}
    for thread_spec in spec.workload.threads:
        program = thread_spec.program
        cfg = shared_cfgs.get(id(program))
        if cfg is None:
            cfg = shared_cfgs[id(program)] = Cfg(program)
        if id(program) not in linted_programs:
            linted_programs.add(id(program))
            diagnostics += label_diagnostics(program, unit)
            diagnostics += check_structure(cfg, unit)
        diagnostics += check_registers(thread_spec, cfg, unit)
        core = machine.cores[machine.thread_core[thread_spec.thread_id]]
        port = core.spl_port
        if isinstance(port, CoreSplPort):
            context = _fabric_context(port.controller, port.slot)
        elif isinstance(port, CommPort):
            context = _comm_context(port.controller, port.slot)
        else:
            context = SplContext(port_kind=None)
        spl_diags, summary = analyze_spl(program, cfg, context, unit)
        diagnostics += spl_diags
        programs[thread_spec.thread_id] = program
        cfgs[thread_spec.thread_id] = cfg
        summaries[thread_spec.thread_id] = summary
    return machine, programs, cfgs, summaries, diagnostics


def lint_spec(spec: RunSpec, unit: str = "") -> List[Diagnostic]:
    """Statically verify one run spec (no simulation).

    Builds the machine and runs the workload's *setup* hook — exactly
    what :func:`repro.experiments.runner.execute` does before its run
    loop — then lints every thread against the installed configuration,
    checks the whole-machine communication graph (CON rules, see
    :mod:`repro.analysis.concurrency`), and validates the spec's cycle
    budget against the static lower bound (BND002, see
    :mod:`repro.analysis.bounds`).
    """
    from repro.analysis.bounds import bounds_from_parts, check_static
    from repro.analysis.concurrency import check_concurrency

    unit = unit or spec.name
    machine, programs, cfgs, summaries, diagnostics = \
        spec_summaries(spec, unit=unit)

    flows, barrier_diags = _collect_flows(machine, summaries, unit)
    diagnostics += barrier_diags
    diagnostics += _balance_diagnostics(summaries, flows, unit)
    diagnostics += _mapping_diagnostics(machine, unit)
    diagnostics += check_concurrency(machine, summaries, programs, cfgs,
                                     unit)
    bounds = bounds_from_parts(machine, programs, cfgs, summaries, unit)
    diagnostics += check_static(bounds, spec.max_cycles, unit)
    return diagnostics


# -- registry-wide sweep ------------------------------------------------------


def library_functions() -> List[Tuple[str, SplFunction]]:
    """The SPL function library checked by the sweep."""
    from repro.workloads import spl_lib
    functions = [
        ("lib/hmmer_mc", spl_lib.hmmer_mc_function()),
        ("lib/mac2", spl_lib.mac2_function()),
        ("lib/mac4", spl_lib.mac4_function()),
        ("lib/sad8", spl_lib.sad8_function()),
        ("lib/route", identity_function()),
        ("lib/barrier_token", barrier_token_function(4)),
    ]
    for op in (DfgOp.MIN, DfgOp.MAX, DfgOp.ADD):
        functions.append((f"lib/reduce_{op.name.lower()}",
                          barrier_reduce_function(4, op)))
    return functions


def lint_library() -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for unit, function in library_functions():
        diagnostics += lint_function(function, unit)
    return diagnostics


def lint_registry(benchmarks: Optional[Sequence[str]] = None,
                  include_library: bool = True) -> List[Diagnostic]:
    """Sweep every registered benchmark x variant (+ the SPL library)."""
    from repro.workloads.registry import REGISTRY
    names = list(benchmarks) if benchmarks else sorted(REGISTRY)
    diagnostics: List[Diagnostic] = []
    for name in names:
        info = REGISTRY[name]
        for variant in sorted(info.variants):
            unit = f"{name}/{variant}"
            try:
                spec = info.variants[variant]()
                diagnostics += lint_spec(spec, unit=unit)
            except Exception as exc:  # noqa: BLE001 - sweep must not abort
                diagnostics.append(Diagnostic(
                    rule="SPEC001", severity=Severity.ERROR,
                    message=f"spec factory raised {type(exc).__name__}: "
                            f"{exc} "
                            f"({traceback.format_exc(limit=1).splitlines()[-1]})",
                    unit=unit))
    if include_library:
        diagnostics += lint_library()
    return diagnostics
