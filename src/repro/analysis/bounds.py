"""Static performance lower bounds (the BND rule family).

From each thread's control-flow graph and the machine's installed SPL
configuration this module derives *provable lower bounds* on what any
correct simulation of the spec must report:

* ``min_retired`` per thread — the shortest instruction path from entry
  to a ``halt`` (loops count once; ``jr`` degrades to 0).
* ``min_cycles`` — retirement-width-limited core cycles, combined with a
  fabric occupancy bound: when a thread's queue words provably come from
  a single SPL function, the pops imply completed fabric evaluations,
  which imply at least one reconfiguration plus initiation-interval
  spacing on that partition (DFG critical path / II lower bound).

Rules:

* **BND001** (error) — a measured cycle count is below the static lower
  bound: the bound or the timing model is broken.
* **BND002** (error) — the spec's ``max_cycles`` budget is below the
  lower bound: the run can never complete (raised statically by
  ``lint_spec``).
* **BND003** (error) — the measured total retired-instruction count is
  below the static minimum.

Bounds are deliberately conservative: widened (unknown) pop counts
contribute nothing, so a bound can be trivial but can never legitimately
exceed a measured run.  The profiler (``repro profile``) and the fuzzer
cross-check BND001/BND003 against every measured run they see.
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import OFF_END, Cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.spl import SplSummary
from repro.common.config import SPL_CLOCK_RATIO
from repro.core.controller import CoreSplPort, SplClusterController
from repro.core.mapper import initiation_interval
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.system.machine import Machine
from repro.workloads.base import RunSpec

_INF = 1 << 30

#: Flattened stats key of a core's retired-instruction counter.
_RETIRED_KEY = re.compile(r"\.cpu\d+\.retired$")


@dataclass(frozen=True)
class ThreadBounds:
    """Static lower bounds for one thread."""

    thread_id: int
    core: int
    min_retired: int
    min_cycles: int


@dataclass
class SpecBounds:
    """Static lower bounds for one :class:`RunSpec`."""

    unit: str
    threads: List[ThreadBounds]
    #: Lower bound on the sum of every core's ``retired`` counter.
    min_total_retired: int
    #: Lower bound on the machine cycle count of any complete run.
    min_cycles: int
    #: Human-readable derivation notes (which bound dominated and why).
    notes: List[str] = field(default_factory=list)


def min_retired(program: Program, cfg: Cfg) -> int:
    """Provable minimum instructions a completing execution retires.

    Shortest block path from entry to a ``halt`` (or off the end); the
    final ``halt`` itself is not counted.  Indirect jumps or a program
    with no reachable exit degrade to 0 (trivially sound).
    """
    if cfg.has_indirect or not program.instructions:
        return 0
    dist: Dict[int, int] = {0: 0}
    heap: List[Tuple[int, int]] = [(0, 0)]
    best: Optional[int] = None
    while heap:
        entered, index = heapq.heappop(heap)
        if entered > dist.get(index, _INF):
            continue
        block = cfg.blocks[index]
        total = entered + (block.end - block.start)
        last = program.instructions[block.end - 1].op
        if last is Op.HALT or OFF_END in block.successors:
            best = total if best is None else min(best, total)
        for succ in block.successors:
            if succ == OFF_END:
                continue
            if total < dist.get(succ, _INF):
                dist[succ] = total
                heapq.heappush(heap, (total, succ))
    if best is None:
        return 0
    return max(0, best - 1)


def _max_retire_width(machine: Machine) -> int:
    width = 1
    for core in machine.cores:
        width = max(width, core.config.retire_width)
    return width


def _fabric_bound(machine: Machine, summaries: Dict[int, SplSummary],
                  notes: List[str]) -> int:
    """Core-cycle lower bound from provable fabric occupancy.

    Only the single-feeder case is claimed: when *all* words a thread
    provably pops come from exactly one non-barrier function binding,
    those pops imply completed evaluations on the bound partition —
    at least one reconfiguration, initiation-interval spacing between
    issues, and the function's row latency for the last one.
    """
    # dest thread -> list of (controller, partition_index, function)
    feeders: Dict[int, List[Tuple[SplClusterController, int, object]]] = {}
    for thread_id in sorted(summaries):
        summary = summaries[thread_id]
        core = machine.cores[machine.thread_core[thread_id]]
        port = core.spl_port
        if not isinstance(port, CoreSplPort):
            continue
        controller = port.controller
        for config, count in sorted(summary.issues.items()):
            binding = controller.bindings.get((port.slot, config))
            if binding is None or binding.barrier_id is not None:
                continue
            if count is not None and not any(v > 0 for v in count):
                continue  # provably never issued
            dest = binding.dest_thread
            dest = thread_id if dest is None else dest
            partition = controller.core_partition[port.slot]
            feeders.setdefault(dest, []).append(
                (controller, partition, binding.function))
    best = 0
    for dest in sorted(feeders):
        entries = feeders[dest]
        distinct = {(id(ctrl), part, id(fn)) for ctrl, part, fn in entries}
        if len(distinct) != 1:
            continue  # mixed feeders: no per-function attribution
        summary = summaries.get(dest)
        if summary is None or summary.pops is None or not summary.pops:
            continue
        pops = min(summary.pops)
        if pops <= 0:
            continue
        controller, partition_index, function = entries[0]
        rows = controller.partitions[partition_index].rows
        fn_rows = int(function.rows)
        n_out = max(1, int(function.n_outputs))
        evaluations = -(-pops // n_out)  # ceil
        interval = max(initiation_interval(fn_rows, rows),
                       int(function.feedback_ii), 1)
        reconfig = min(fn_rows, rows) * \
            controller.config.config_cycles_per_row
        fabric_cycles = reconfig + (evaluations - 1) * interval + fn_rows
        core_cycles = max(0, (fabric_cycles - 1) * SPL_CLOCK_RATIO)
        if core_cycles > best:
            best = core_cycles
            notes.append(
                f"fabric bound: thread {dest} pops >= {pops} words from "
                f"function {function.name!r} alone -> >= {evaluations} "
                f"evaluations on a {rows}-row partition "
                f"({reconfig} reconfig + II {interval} spacing) -> >= "
                f"{core_cycles} core cycles")
    return best


def bounds_from_parts(machine: Machine, programs: Dict[int, Program],
                      cfgs: Dict[int, Cfg],
                      summaries: Dict[int, SplSummary],
                      unit: str = "") -> SpecBounds:
    """Derive :class:`SpecBounds` from pre-computed analysis artifacts."""
    notes: List[str] = []
    width = _max_retire_width(machine)
    threads: List[ThreadBounds] = []
    total_retired = 0
    core_bound = 0
    for thread_id in sorted(programs):
        retired = min_retired(programs[thread_id], cfgs[thread_id])
        cycles = -(-retired // width) if retired else 0
        threads.append(ThreadBounds(
            thread_id=thread_id,
            core=machine.thread_core[thread_id],
            min_retired=retired, min_cycles=cycles))
        total_retired += retired
        core_bound = max(core_bound, cycles)
    if core_bound:
        notes.append(
            f"core bound: longest thread must retire >= "
            f"{max((t.min_retired for t in threads), default=0)} "
            f"instructions at retire width {width} -> >= {core_bound} "
            f"cycles")
    fabric = _fabric_bound(machine, summaries, notes)
    return SpecBounds(unit=unit, threads=threads,
                      min_total_retired=total_retired,
                      min_cycles=max(core_bound, fabric), notes=notes)


def compute_bounds(spec: RunSpec, unit: str = "") -> SpecBounds:
    """Build the spec's machine (setup only, no simulation) and bound it."""
    from repro.analysis.lint import spec_summaries
    machine, programs, cfgs, summaries, _ = spec_summaries(spec)
    return bounds_from_parts(machine, programs, cfgs, summaries,
                             unit or spec.name)


# -- rules --------------------------------------------------------------------


def check_static(bounds: SpecBounds, max_cycles: int,
                 unit: str = "") -> List[Diagnostic]:
    """BND002: the run budget is below the static lower bound."""
    if max_cycles >= bounds.min_cycles:
        return []
    return [Diagnostic(
        rule="BND002", severity=Severity.ERROR,
        message=f"max_cycles budget ({max_cycles}) is below the static "
                f"lower bound of {bounds.min_cycles} cycles; the run can "
                f"never complete",
        unit=unit or bounds.unit)]


def measured_retired(counters: Dict[str, float]) -> int:
    """Sum of every core's ``retired`` counter in a flattened stats dict."""
    return int(sum(value for key, value in counters.items()
                   if _RETIRED_KEY.search(key)))


def check_measured(bounds: SpecBounds, cycles: int,
                   counters: Optional[Dict[str, float]] = None,
                   unit: str = "") -> List[Diagnostic]:
    """BND001/BND003: measured results must respect the lower bounds."""
    unit = unit or bounds.unit
    diagnostics: List[Diagnostic] = []
    if cycles < bounds.min_cycles:
        diagnostics.append(Diagnostic(
            rule="BND001", severity=Severity.ERROR,
            message=f"measured {cycles} cycles is below the static lower "
                    f"bound of {bounds.min_cycles}; the bound or the "
                    f"timing model is broken",
            unit=unit))
    if counters:
        retired = measured_retired(counters)
        if retired < bounds.min_total_retired:
            diagnostics.append(Diagnostic(
                rule="BND003", severity=Severity.ERROR,
                message=f"measured {retired} retired instructions is "
                        f"below the static minimum of "
                        f"{bounds.min_total_retired}",
                unit=unit))
    return diagnostics
