"""Register rules.

* **REG001** (warning) — an instruction reads a register on some path
  before anything wrote it.  Simulated reads of unwritten registers
  return the architected zero, so this is defined behaviour — but almost
  always a missing initialization (or a missing ``int_regs`` entry in the
  thread spec, which the analysis honours as initial definitions).
* **REG002** (warning) — an instruction with a destination register
  explicitly names ``r0``; the write is silently discarded.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.analysis.cfg import Cfg
from repro.analysis.dataflow import ForwardAnalysis, forward
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.isa.instruction import ZERO_REG, reg_index, reg_name
from repro.isa.opcodes import Fmt
from repro.isa.program import Program, ThreadSpec

Defined = FrozenSet[int]


def _entry_defs(spec: ThreadSpec) -> Defined:
    defined = {ZERO_REG}
    for name in spec.int_regs:
        defined.add(reg_index(name))
    for name in spec.fp_regs:
        defined.add(reg_index(name))
    return frozenset(defined)


def check_registers(spec: ThreadSpec, cfg: Cfg,
                    unit: str = "") -> List[Diagnostic]:
    """Run the must-defined analysis for one thread's program."""
    program: Program = spec.program
    insts = program.instructions

    def transfer(state: Defined, pc: int) -> Defined:
        dest = insts[pc].dest()
        return state if dest is None else state | {dest}

    analysis: ForwardAnalysis[Defined] = ForwardAnalysis(
        entry=_entry_defs(spec),
        join=lambda a, b: a & b,
        transfer=transfer)
    in_states = forward(analysis, cfg)

    diagnostics: List[Diagnostic] = []
    reported = set()
    for index, state in in_states.items():
        for pc in cfg.blocks[index].pcs():
            inst = insts[pc]
            for reg in inst.sources():
                if reg not in state and (reg, pc) not in reported:
                    reported.add((reg, pc))
                    diagnostics.append(Diagnostic(
                        rule="REG001", severity=Severity.WARNING,
                        message=f"{inst!r} reads {reg_name(reg)} before "
                                f"any write (reads architected zero)",
                        unit=unit, program=program.name, pc=pc))
            if inst.rd == ZERO_REG and inst.info.writes_rd and \
                    inst.info.fmt is not Fmt.SPL_RECV:
                diagnostics.append(Diagnostic(
                    rule="REG002", severity=Severity.WARNING,
                    message=f"{inst!r} writes r0; the result is discarded",
                    unit=unit, program=program.name, pc=pc))
            state = transfer(state, pc)
    return diagnostics
