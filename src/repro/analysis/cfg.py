"""Control-flow graphs over assembled :class:`~repro.isa.program.Program`s.

Basic-block leaders are the entry point, every branch/jump target, and
every instruction following a control transfer.  Successors:

* conditional branches — the target block and the fall-through block;
* ``j``/``jal`` — the target block only;
* ``jr`` — statically unknown (the CFG records the program as *indirect*
  and downstream analyses go conservative);
* ``halt`` — no successors (thread exit);
* anything else at a block end — the fall-through block, or *off the end*
  of the program when the block ends at the last instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isa.opcodes import Op
from repro.isa.program import Program

#: Sentinel successor id: execution falls through past the last
#: instruction (a simulated pc-out-of-range fault).
OFF_END = -1


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)

    def pcs(self) -> range:
        return range(self.start, self.end)


class Cfg:
    """Basic blocks, successor edges, and reachability for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: List[BasicBlock] = []
        self.block_of_pc: Dict[int, int] = {}
        #: True when the program contains ``jr`` — successor sets are then
        #: under-approximate and flow analyses must degrade gracefully.
        self.has_indirect = False
        self._build()
        self.reachable: Set[int] = self._reachability()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        insts = self.program.instructions
        n = len(insts)
        leaders = {0}
        for pc, inst in enumerate(insts):
            if inst.op is Op.JR:
                self.has_indirect = True
            if not inst.info.is_branch and inst.op is not Op.HALT:
                continue
            if pc + 1 < n:
                leaders.add(pc + 1)
            if isinstance(inst.target, int) and 0 <= inst.target < n:
                leaders.add(inst.target)
        starts = sorted(leaders)
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else n
            block = BasicBlock(index=index, start=start, end=end)
            self.blocks.append(block)
            for pc in range(start, end):
                self.block_of_pc[pc] = index
        for block in self.blocks:
            block.successors = self._successors(block)

    def _successors(self, block: BasicBlock) -> List[int]:
        last = self.program.instructions[block.end - 1]
        n = len(self.program.instructions)

        def block_at(pc: int) -> int:
            return OFF_END if pc >= n else self.block_of_pc[pc]

        if last.op is Op.HALT:
            return []
        if last.op is Op.JR:
            # Indirect: no static successors; has_indirect marks the loss.
            return []
        if last.op in (Op.J, Op.JAL):
            return [block_at(last.target)]
        if last.info.is_branch:  # conditional: target + fall-through
            succs = [block_at(last.target), block_at(block.end)]
            return sorted(set(succs), key=succs.index)
        return [block_at(block.end)]

    # -- queries -------------------------------------------------------------

    def _reachability(self) -> Set[int]:
        if self.has_indirect:
            # jr could land anywhere a label exists; treat every block as
            # reachable rather than reporting spurious dead code.
            return set(range(len(self.blocks)))
        seen: Set[int] = set()
        work = [0]
        while work:
            index = work.pop()
            if index in seen or index == OFF_END:
                continue
            seen.add(index)
            work.extend(self.blocks[index].successors)
        return seen

    def reachable_pcs(self) -> Set[int]:
        pcs: Set[int] = set()
        for index in self.reachable:
            pcs.update(self.blocks[index].pcs())
        return pcs

    def falls_off_end(self) -> bool:
        """True when some reachable path runs past the last instruction."""
        return any(OFF_END in self.blocks[index].successors
                   for index in self.reachable)
