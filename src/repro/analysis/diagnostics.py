"""Structured lint diagnostics (rule id, severity, location, reporters).

Every analysis pass reports findings as :class:`Diagnostic` records rather
than raising, so one sweep can surface all problems at once and callers
(CLI, engine pre-flight, tests) decide what is fatal.  The rule catalogue
lives in docs/ANALYSIS.md; severities:

* ``error``   — the program would fault, hang, or silently misbehave when
  simulated (these fail ``repro lint`` and the engine pre-flight).
* ``warning`` — suspicious construct that simulates but most likely does
  not mean what it says (e.g. reading a never-written register).
* ``note``    — stylistic or informational (never fails anything).
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Union


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: JSON schema version of :meth:`Diagnostic.to_dict` records.
DIAGNOSTIC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis rule.

    ``program``/``pc`` locate findings in an assembled program;
    ``dfg``/``node`` locate findings in a dataflow graph; ``unit`` names
    the enclosing sweep unit (benchmark/variant or library function).
    """

    rule: str
    severity: Severity
    message: str
    unit: str = ""
    program: Optional[str] = None
    pc: Optional[int] = None
    dfg: Optional[str] = None
    node: Optional[int] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def location(self) -> str:
        parts: List[str] = []
        if self.unit:
            parts.append(self.unit)
        if self.program is not None:
            where = self.program
            if self.pc is not None:
                where += f"@{self.pc}"
            parts.append(where)
        if self.dfg is not None:
            where = f"dfg:{self.dfg}"
            if self.node is not None:
                where += f"#{self.node}"
            parts.append(where)
        return " ".join(parts) or "<global>"

    def to_dict(self) -> Dict[str, Union[str, int, None]]:
        record = asdict(self)
        record["severity"] = self.severity.value
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Union[str, int, None]]
                  ) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (round-trips every field)."""
        fields = dict(record)
        fields["severity"] = Severity(fields["severity"])
        return cls(**fields)  # type: ignore[arg-type]

    def sort_key(self) -> tuple:
        """Total order for reports: severity, unit, rule, then location.

        Every field participates so that renderings are byte-stable
        across runs regardless of the order passes emitted findings.
        """
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}
        return (order[self.severity], self.unit, self.rule,
                self.program or "", self.pc if self.pc is not None else -1,
                self.dfg or "", self.node if self.node is not None else -1,
                self.message)

    def render(self) -> str:
        return (f"{self.severity.value}[{self.rule}] {self.location}: "
                f"{self.message}")


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(diag.is_error for diag in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for diag in diagnostics:
        counts[diag.severity.value] += 1
    return counts


def render_text(diagnostics: List[Diagnostic]) -> str:
    """Human-readable report, errors first (stable total order)."""
    lines = [diag.render() for diag in
             sorted(diagnostics, key=Diagnostic.sort_key)]
    counts = count_by_severity(diagnostics)
    lines.append(f"{counts['error']} errors, {counts['warning']} warnings, "
                 f"{counts['note']} notes")
    return "\n".join(lines)


def render_json(diagnostics: List[Diagnostic]) -> str:
    """Machine-readable report (schema in docs/ANALYSIS.md).

    Records are emitted in the same stable total order as
    :func:`render_text`, so reports diff cleanly across runs.
    """
    return json.dumps({
        "schema": DIAGNOSTIC_SCHEMA_VERSION,
        "counts": count_by_severity(diagnostics),
        "diagnostics": [diag.to_dict() for diag in
                        sorted(diagnostics, key=Diagnostic.sort_key)],
    }, indent=2, sort_keys=True)
