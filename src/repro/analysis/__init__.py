"""Static verification of ISA programs and SPL functions.

A CFG builder and a small forward-dataflow framework feed rule passes
that produce structured :class:`~repro.analysis.diagnostics.Diagnostic`
records: register hygiene (REG*), control-flow structure (CFG*), label
hygiene (LBL*), the SPL staging/issue/pop protocol by abstract
interpretation (SPL*), static mappability of SPL functions (MAP*), and
sweep bookkeeping (SPEC*).  See docs/ANALYSIS.md for the rule catalogue
and the JSON report schema.

Entry points: ``python -m repro lint`` sweeps the whole benchmark
registry plus the SPL function library, and the experiment engine lints
every spec it is about to simulate (pre-flight, ``--no-lint`` to skip).
"""

from repro.analysis.cfg import Cfg
from repro.analysis.diagnostics import (DIAGNOSTIC_SCHEMA_VERSION,
                                        Diagnostic, Severity,
                                        count_by_severity, has_errors,
                                        render_json, render_text)
from repro.analysis.lint import (library_functions, lint_library,
                                 lint_program, lint_registry, lint_spec)
from repro.analysis.mapping import lint_dfg, lint_function
from repro.analysis.spl import SplContext, analyze_spl

__all__ = [
    "Cfg",
    "DIAGNOSTIC_SCHEMA_VERSION",
    "Diagnostic",
    "Severity",
    "SplContext",
    "analyze_spl",
    "count_by_severity",
    "has_errors",
    "library_functions",
    "lint_dfg",
    "lint_function",
    "lint_library",
    "lint_program",
    "lint_registry",
    "lint_spec",
    "render_json",
    "render_text",
]
