"""Static verification of ISA programs and SPL functions.

A CFG builder and a small forward-dataflow framework feed rule passes
that produce structured :class:`~repro.analysis.diagnostics.Diagnostic`
records: register hygiene (REG*), control-flow structure (CFG*), label
hygiene (LBL*), the SPL staging/issue/pop protocol by abstract
interpretation (SPL*), static mappability of SPL functions (MAP*),
whole-machine concurrency verification over the inter-thread
communication graph (CON*), static performance lower bounds (BND*), and
sweep bookkeeping (SPEC*).  See docs/ANALYSIS.md for the rule catalogue
and the JSON report schema.

Entry points: ``python -m repro lint`` sweeps the whole benchmark
registry plus the SPL function library, the experiment engine lints
every spec it is about to simulate (pre-flight, ``--no-lint`` to skip),
and ``python -m repro fuzz`` cross-checks the static verdicts against
dynamic behaviour on randomized scenarios
(:mod:`repro.analysis.fuzz`).
"""

from repro.analysis.bounds import (SpecBounds, ThreadBounds, check_measured,
                                   check_static, compute_bounds,
                                   measured_retired, min_retired)
from repro.analysis.cfg import Cfg
from repro.analysis.concurrency import (CommGraph, build_comm_graph,
                                        check_concurrency)
from repro.analysis.diagnostics import (DIAGNOSTIC_SCHEMA_VERSION,
                                        Diagnostic, Severity,
                                        count_by_severity, has_errors,
                                        render_json, render_text)
from repro.analysis.lint import (library_functions, lint_library,
                                 lint_program, lint_registry, lint_spec,
                                 spec_summaries)
from repro.analysis.mapping import lint_dfg, lint_function
from repro.analysis.spl import SplContext, analyze_spl

__all__ = [
    "Cfg",
    "CommGraph",
    "DIAGNOSTIC_SCHEMA_VERSION",
    "Diagnostic",
    "Severity",
    "SpecBounds",
    "SplContext",
    "ThreadBounds",
    "analyze_spl",
    "build_comm_graph",
    "check_concurrency",
    "check_measured",
    "check_static",
    "compute_bounds",
    "count_by_severity",
    "has_errors",
    "library_functions",
    "lint_dfg",
    "lint_function",
    "lint_library",
    "lint_program",
    "lint_registry",
    "lint_spec",
    "measured_retired",
    "min_retired",
    "render_json",
    "render_text",
    "spec_summaries",
]
