"""A small forward-dataflow framework over :class:`~repro.analysis.cfg.Cfg`.

Analyses supply an entry state, a join, a per-instruction transfer, and an
equality test; :func:`forward` iterates a worklist to the fixed point and
returns every block's input state.  States are treated as immutable —
transfer functions must return fresh values.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, List, Optional, TypeVar

from repro.analysis.cfg import OFF_END, Cfg

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """One forward dataflow problem.

    ``transfer(state, pc)`` maps the state before the instruction at
    ``pc`` to the state after it.  ``join`` combines predecessor states;
    blocks with no incoming state yet are skipped until one arrives.
    """

    def __init__(self, entry: S, join: Callable[[S, S], S],
                 transfer: Callable[[S, int], S],
                 equal: Optional[Callable[[S, S], bool]] = None) -> None:
        self.entry = entry
        self.join = join
        self.transfer = transfer
        self.equal = equal or (lambda a, b: bool(a == b))


def block_out(analysis: ForwardAnalysis[S], cfg: Cfg, block_index: int,
              state: S) -> S:
    for pc in cfg.blocks[block_index].pcs():
        state = analysis.transfer(state, pc)
    return state


def forward(analysis: ForwardAnalysis[S], cfg: Cfg) -> Dict[int, S]:
    """Run to fixpoint; returns {block index: state at block entry}.

    Only reachable blocks appear in the result.  The framework bounds
    iteration defensively (each analysis must have a finite-height
    lattice; the SPL counters widen to TOP to guarantee it).
    """
    in_states: Dict[int, S] = {0: analysis.entry}
    work = deque([0])
    visits: List[int] = [0] * len(cfg.blocks)
    limit = 64 * (len(cfg.blocks) + 1)
    while work:
        index = work.popleft()
        visits[index] += 1
        if visits[index] > limit:  # pragma: no cover - widening backstop
            break
        out = block_out(analysis, cfg, index, in_states[index])
        for succ in cfg.blocks[index].successors:
            if succ == OFF_END:
                continue
            if succ not in in_states:
                in_states[succ] = out
                work.append(succ)
            else:
                merged = analysis.join(in_states[succ], out)
                if not analysis.equal(merged, in_states[succ]):
                    in_states[succ] = merged
                    work.append(succ)
    return in_states


def exit_states(analysis: ForwardAnalysis[S], cfg: Cfg,
                in_states: Dict[int, S]) -> List[S]:
    """States after every reachable ``halt`` (normal thread exits)."""
    from repro.isa.opcodes import Op
    exits: List[S] = []
    for index, state in in_states.items():
        block = cfg.blocks[index]
        last = cfg.program.instructions[block.end - 1]
        if last.op is Op.HALT:
            out = state
            for pc in range(block.start, block.end - 1):
                out = analysis.transfer(out, pc)
            exits.append(out)
    return exits
