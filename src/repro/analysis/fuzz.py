"""Property-based scenario fuzzer: static verdicts vs. dynamic behaviour.

Randomized multithreaded scenarios (communication rings, producer /
consumer pairs over fabric and dedicated-comm, barriers, self-loops,
random compute DFGs) are generated from a seed, statically analyzed by
:func:`repro.analysis.lint.lint_spec`, and simulated.  Three agreement
properties are enforced per scenario (``python -m repro fuzz``):

1. **Clean means runs.**  A scenario with no error-severity diagnostics
   must simulate to completion without :exc:`DeadlockError` /
   :exc:`SplError`, and its static performance lower bounds
   (:mod:`repro.analysis.bounds`) must not exceed the measured run.
2. **Flagged means fails.**  A scenario seeded with a defect must be
   flagged by the expected rule family *and* actually misbehave when
   simulated (deadlock with a non-empty wait-state report, or an SPL
   fault).  A flagged scenario that runs clean is recorded as a
   *downgrade counterexample* for the rule.
3. **Modes agree.**  Clean scenarios are executed under every
   combination of DFG codegen on/off, fast-forward on/off, and
   trace-cache block compilation on/off; cycle counts, every stats
   counter, and result memory words must be identical across the eight
   modes.  The multithreaded scenarios (rings, producer/consumer pairs,
   barriers) keep several cores live at once, so the blockgen=on legs
   exercise the fused *multi-core* window path (DESIGN.md section 10) —
   per-core deopt, in-window elision, and cross-core pokes are all
   covered by the same agreement contract.

Any violation is a *disagreement*; :func:`run_fuzz` reports them all and
returns a non-zero exit code if any exist.  Scenario generation is fully
deterministic in the seed, so a failing seed is a reproducer.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.bounds import check_measured, compute_bounds
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import lint_spec
from repro.baselines.comm_network import attach_comm_network
from repro.common.config import (ENV_NO_CODEGEN, RunOptions, SystemConfig,
                                 ooo2_cluster, remap_cluster)
from repro.common.errors import DeadlockError, ReproError, SplError
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import (SplFunction, barrier_token_function,
                                 identity_function)
from repro.isa import Asm, MemoryImage, Program, ThreadSpec
from repro.system.machine import Machine
from repro.system.workload import Workload
from repro.workloads.base import RunSpec

#: JSON schema version of :func:`run_fuzz` reports.
FUZZ_SCHEMA_VERSION = 1

#: Watchdog window for fuzz machines: recv-parked deadlocks are detected
#: in O(1) by the quiescence probe, init-spinning ones tick naively, so
#: the window stays small to bound the worst case.
_DEADLOCK_CYCLES = 10_000
_MAX_CYCLES = 2_000_000

_RESULT_BASE = 0x8000
_CONFIG = 1
_BARRIER_CONFIG = 3
_BARRIER_ID = 1
_COMM_ROUTE_CONFIG = 2


@dataclass
class Scenario:
    """One generated scenario: a spec builder plus its expectations."""

    seed: int
    kind: str
    #: None for an expected-clean scenario, else the seeded defect name.
    defect: Optional[str]
    #: Rule ids of which at least one must fire when ``defect`` is set.
    expect_rules: Tuple[str, ...]
    #: Rebuildable so each execution mode gets fresh SplFunction state
    #: (and the construction-time codegen gate is re-sampled).
    build: Callable[[], RunSpec]
    #: Result words compared across modes (and against ``golden``).
    result_addrs: Tuple[int, ...] = ()
    #: addr -> mode-independent expected value (host-model golden).
    golden: Dict[int, int] = field(default_factory=dict)


def _remap_system() -> SystemConfig:
    return SystemConfig(clusters=[remap_cluster()],
                        deadlock_cycles=_DEADLOCK_CYCLES)


def _ooo2_system() -> SystemConfig:
    return SystemConfig(clusters=[ooo2_cluster(4)],
                        deadlock_cycles=_DEADLOCK_CYCLES)


def _send_words(a: Asm, values: Sequence[int], config: int) -> None:
    for value in values:
        a.li("r4", value)
        a.spl_load("r4", 0)
        a.spl_init(config)


def _recv_sum(a: Asm, count: int) -> None:
    """Pop ``count`` words into an r3 accumulator (r3 must be zeroed)."""
    for _ in range(count):
        a.spl_recv("r5")
        a.add("r3", "r3", "r5")


def _store_result(a: Asm, addr: int) -> None:
    a.li("r6", addr)
    a.sw("r3", "r6", 0)


def _ring_program(name: str, values: Sequence[int], addr: int,
                  pop_first: bool) -> Program:
    a = Asm(name)
    a.li("r3", 0)
    if pop_first:
        _recv_sum(a, len(values))
        _send_words(a, values, _CONFIG)
    else:
        _send_words(a, values, _CONFIG)
        _recv_sum(a, len(values))
    _store_result(a, addr)
    a.halt()
    return a.assemble()


def _scenario_ring(seed: int, rng: random.Random,
                   defect: Optional[str]) -> Scenario:
    n = rng.choice((2, 3))
    k = rng.randint(2, 4)
    bases = [rng.randint(1, 500) for _ in range(n)]
    pop_first = defect == "ring_deadlock"
    addrs = tuple(_RESULT_BASE + 4 * i for i in range(n))

    def build() -> RunSpec:
        route = identity_function("fuzz_route")
        threads = []
        for i in range(n):
            values = [bases[i] + j for j in range(k)]
            program = _ring_program(f"ring{i}", values, addrs[i], pop_first)
            threads.append(ThreadSpec(program, thread_id=i + 1))

        def setup(machine: Machine) -> None:
            for i in range(n):
                dest = (i + 1) % n + 1
                machine.configure_spl(i, _CONFIG, route, dest_thread=dest)

        workload = Workload(f"fuzz_ring_{seed}", MemoryImage(), threads,
                            placement=list(range(n)), setup=setup)
        return RunSpec(f"fuzz/ring/{seed}", workload, _remap_system(),
                       max_cycles=_MAX_CYCLES)

    golden = {addrs[i]: sum(bases[(i - 1) % n] + j for j in range(k))
              for i in range(n)}
    return Scenario(seed, "ring", defect, ("CON004",), build,
                    result_addrs=addrs, golden=golden)


def _scenario_fabric_pair(seed: int, rng: random.Random,
                          defect: Optional[str]) -> Scenario:
    # dest_absent needs enough sends to wedge the producer: the fabric
    # can absorb one input queue plus the staging entry before the core
    # blocks, so overshoot the queue depth comfortably.
    k = 24 if defect == "dest_absent" else rng.randint(2, 5)
    base = rng.randint(1, 500)
    addr = _RESULT_BASE
    values = [base + j for j in range(k)]

    def build() -> RunSpec:
        route = identity_function("fuzz_route")
        a = Asm("producer")
        _send_words(a, values, _CONFIG)
        a.halt()
        producer = a.assemble()
        a = Asm("consumer")
        if defect == "dest_absent":
            a.halt()
        else:
            a.li("r3", 0)
            _recv_sum(a, k)
            _store_result(a, addr)
            a.halt()
        consumer = a.assemble()
        dest = 99 if defect == "dest_absent" else 2

        def setup(machine: Machine) -> None:
            machine.configure_spl(0, _CONFIG, route, dest_thread=dest)

        workload = Workload(
            f"fuzz_pair_{seed}", MemoryImage(),
            [ThreadSpec(producer, thread_id=1),
             ThreadSpec(consumer, thread_id=2)],
            placement=[0, 1], setup=setup)
        return RunSpec(f"fuzz/pair/{seed}", workload, _remap_system(),
                       max_cycles=_MAX_CYCLES)

    if defect == "dest_absent":
        return Scenario(seed, "fabric_pair", defect, ("CON001",), build)
    return Scenario(seed, "fabric_pair", None, (), build,
                    result_addrs=(addr,), golden={addr: sum(values)})


def _scenario_comm_pair(seed: int, rng: random.Random,
                        defect: Optional[str]) -> Scenario:
    k = rng.randint(2, 5)
    base = rng.randint(1, 500)
    addr = _RESULT_BASE
    values = [base + j for j in range(k)]

    def build() -> RunSpec:
        a = Asm("producer")
        _send_words(a, values, _COMM_ROUTE_CONFIG)
        a.halt()
        producer = a.assemble()
        a = Asm("consumer")
        a.li("r3", 0)
        _recv_sum(a, k)
        _store_result(a, addr)
        a.halt()
        consumer = a.assemble()
        dest = 99 if defect == "comm_dest_absent" else 2

        def setup(machine: Machine) -> None:
            controller = attach_comm_network(machine, 0)
            controller.configure_send(0, _COMM_ROUTE_CONFIG,
                                      dest_thread=dest)

        workload = Workload(
            f"fuzz_comm_{seed}", MemoryImage(),
            [ThreadSpec(producer, thread_id=1),
             ThreadSpec(consumer, thread_id=2)],
            placement=[0, 1], setup=setup)
        return RunSpec(f"fuzz/comm/{seed}", workload, _ooo2_system(),
                       max_cycles=_MAX_CYCLES)

    if defect == "comm_dest_absent":
        # The consumer starves: CON001 flags the unmatched endpoint and
        # SPL005 the guaranteed-blocking pop.
        return Scenario(seed, "comm_pair", defect, ("CON001", "SPL005"),
                        build)
    return Scenario(seed, "comm_pair", None, (), build,
                    result_addrs=(addr,), golden={addr: sum(values)})


def _scenario_barrier(seed: int, rng: random.Random,
                      defect: Optional[str]) -> Scenario:
    n = rng.choice((2, 3, 4))
    rounds = rng.randint(1, 3)
    addrs = tuple(_RESULT_BASE + 4 * i for i in range(n))

    def build() -> RunSpec:
        token = barrier_token_function(n, "fuzz_barrier")
        threads = []
        for i in range(n):
            my_rounds = rounds
            if defect == "barrier_unbalanced" and i == 0:
                my_rounds = rounds + 1
            a = Asm(f"barrier{i}")
            a.li("r3", 0)
            for r in range(my_rounds):
                a.li("r4", i + 1)
                a.spl_load("r4", 0)
                a.spl_init(_BARRIER_CONFIG)
                a.spl_recv("r5")
                a.add("r3", "r3", "r5")
            _store_result(a, addrs[i])
            a.halt()
            threads.append(ThreadSpec(a.assemble(), thread_id=i + 1))

        def setup(machine: Machine) -> None:
            tids = list(range(1, n + 1))
            if defect == "barrier_phantom":
                machine.register_barrier(_BARRIER_ID, 1, tids + [n + 1])
            elif defect != "barrier_unregistered":
                machine.register_barrier(_BARRIER_ID, 1, tids)
            for i in range(n):
                machine.configure_spl(i, _BARRIER_CONFIG, token,
                                      barrier_id=_BARRIER_ID)

        workload = Workload(f"fuzz_barrier_{seed}", MemoryImage(), threads,
                            placement=list(range(n)), setup=setup)
        return RunSpec(f"fuzz/barrier/{seed}", workload, _remap_system(),
                       max_cycles=_MAX_CYCLES)

    expect = {"barrier_unregistered": ("CON003",),
              "barrier_phantom": ("CON003",),
              "barrier_unbalanced": ("SPL004",)}.get(defect or "", ())
    # Each release hands every participant the slot-0 token (thread 1's
    # contribution, value 1).
    golden = {addr: rounds for addr in addrs}
    return Scenario(seed, "barrier", defect, expect, build,
                    result_addrs=addrs if defect is None else (),
                    golden=golden if defect is None else {})


def _scenario_selfloop(seed: int, rng: random.Random,
                       defect: Optional[str]) -> Scenario:
    # Overfill must exceed the static absorption threshold (output queue
    # + input queue + in-flight cap + partition rows): 140 > 128.
    k = 140 if defect == "selfloop_overfill" else rng.randint(2, 8)
    base = rng.randint(1, 500)
    addr = _RESULT_BASE
    values = [base + j for j in range(k)]

    def build() -> RunSpec:
        route = identity_function("fuzz_route")
        a = Asm("selfloop")
        a.li("r3", 0)
        _send_words(a, values, _CONFIG)
        _recv_sum(a, k)
        _store_result(a, addr)
        a.halt()

        def setup(machine: Machine) -> None:
            machine.configure_spl(0, _CONFIG, route)

        workload = Workload(f"fuzz_self_{seed}", MemoryImage(),
                            [ThreadSpec(a.assemble(), thread_id=1)],
                            placement=[0], setup=setup)
        return RunSpec(f"fuzz/self/{seed}", workload, _remap_system(),
                       max_cycles=_MAX_CYCLES)

    if defect == "selfloop_overfill":
        return Scenario(seed, "selfloop", defect, ("CON005",), build)
    return Scenario(seed, "selfloop", None, (), build,
                    result_addrs=(addr,), golden={addr: sum(values)})


def _random_dfg(rng: random.Random) -> Dfg:
    """A small random feed-forward compute graph (1 output word)."""
    dfg = Dfg(f"fuzz_dfg_{rng.randint(0, 1 << 16)}")
    n_inputs = rng.randint(1, 3)
    nodes = [dfg.input(f"v{i}", offset=4 * i, width=4)
             for i in range(n_inputs)]
    # Small positive values + overflow-free ops keep the host-model
    # golden exact without modelling 32-bit wraparound.
    ops = (DfgOp.ADD, DfgOp.MIN, DfgOp.MAX)
    for _ in range(rng.randint(1, 4)):
        op = rng.choice(ops)
        a = rng.choice(nodes)
        b = rng.choice(nodes + [dfg.const(rng.randint(1, 9))])
        nodes.append(dfg.op(op, a, b))
    out = nodes[-1]
    if out.op is DfgOp.INPUT:
        out = dfg.op(DfgOp.PASS, out)
    dfg.output("result", out)
    return dfg


def _scenario_compute(seed: int, rng: random.Random) -> Scenario:
    dfg = _random_dfg(rng)
    n_inputs = len(dfg.inputs)
    iterations = rng.randint(1, 3)
    inputs = [[rng.randint(1, 1000) for _ in range(n_inputs)]
              for _ in range(iterations)]
    addr = _RESULT_BASE
    golden_sum = 0
    for row in inputs:
        feed = {f"v{i}": row[i] for i in range(n_inputs)}
        golden_sum += dfg.evaluate(feed)["result"]

    def build() -> RunSpec:
        function = SplFunction(dfg)
        a = Asm("compute")
        a.li("r3", 0)
        for row in inputs:
            for i, value in enumerate(row):
                a.li("r4", value)
                a.spl_load("r4", 4 * i)
            a.spl_init(_CONFIG)
            a.spl_recv("r5")
            a.add("r3", "r3", "r5")
        _store_result(a, addr)
        a.halt()

        def setup(machine: Machine) -> None:
            machine.configure_spl(0, _CONFIG, function)

        workload = Workload(f"fuzz_compute_{seed}", MemoryImage(),
                            [ThreadSpec(a.assemble(), thread_id=1)],
                            placement=[0], setup=setup)
        return RunSpec(f"fuzz/compute/{seed}", workload, _remap_system(),
                       max_cycles=_MAX_CYCLES)

    return Scenario(seed, "compute", None, (), build,
                    result_addrs=(addr,), golden={addr: golden_sum})


#: (kind, defect) menu the seed indexes into; clean entries dominate so
#: the mode-agreement property gets most of the coverage.
_MENU: Tuple[Tuple[str, Optional[str]], ...] = (
    ("ring", None),
    ("fabric_pair", None),
    ("comm_pair", None),
    ("barrier", None),
    ("selfloop", None),
    ("compute", None),
    ("compute", None),
    ("ring", "ring_deadlock"),
    ("fabric_pair", "dest_absent"),
    ("comm_pair", "comm_dest_absent"),
    ("barrier", "barrier_unregistered"),
    ("barrier", "barrier_phantom"),
    ("barrier", "barrier_unbalanced"),
    ("selfloop", "selfloop_overfill"),
)

_GENERATORS = {
    "ring": _scenario_ring,
    "fabric_pair": _scenario_fabric_pair,
    "comm_pair": _scenario_comm_pair,
    "barrier": _scenario_barrier,
    "selfloop": _scenario_selfloop,
}


def scenario_for_seed(seed: int) -> Scenario:
    """Deterministically generate the scenario for ``seed``."""
    rng = random.Random(seed)
    kind, defect = _MENU[seed % len(_MENU)]
    if kind == "compute":
        return _scenario_compute(seed, rng)
    return _GENERATORS[kind](seed, rng, defect)


# -- execution ----------------------------------------------------------------


def _build_in_mode(scenario: Scenario, codegen: bool) -> RunSpec:
    """Rebuild the spec with the construction-time codegen gate pinned."""
    saved = os.environ.get(ENV_NO_CODEGEN)
    try:
        if codegen:
            os.environ.pop(ENV_NO_CODEGEN, None)
        else:
            os.environ[ENV_NO_CODEGEN] = "1"
        return scenario.build()
    finally:
        if saved is None:
            os.environ.pop(ENV_NO_CODEGEN, None)
        else:
            os.environ[ENV_NO_CODEGEN] = saved


def _run_spec(spec: RunSpec, scenario: Scenario,
              fast_forward: bool, blockgen: bool = True) -> Dict[str, Any]:
    machine = Machine(spec.system)
    machine.load(spec.workload)
    cycles = machine.run(options=RunOptions(max_cycles=spec.max_cycles,
                                            fast_forward=fast_forward,
                                            blockgen=blockgen))
    return {
        "cycles": cycles,
        "counters": machine.stats.as_dict(),
        "results": {addr: machine.memory.read_word(addr)
                    for addr in scenario.result_addrs},
    }


def _error_rules(diagnostics: Sequence[Diagnostic]) -> List[str]:
    return sorted({d.rule for d in diagnostics if d.is_error})


def run_scenario(scenario: Scenario) -> Dict[str, Any]:
    """Lint + simulate one scenario; returns its agreement record."""
    record: Dict[str, Any] = {
        "seed": scenario.seed,
        "kind": scenario.kind,
        "defect": scenario.defect,
        "disagreements": [],
    }
    disagreements: List[str] = record["disagreements"]

    spec = _build_in_mode(scenario, codegen=True)
    unit = spec.name
    diagnostics = lint_spec(spec, unit=unit)
    rules = _error_rules(diagnostics)
    record["error_rules"] = rules

    if scenario.defect is not None:
        if not any(rule in rules for rule in scenario.expect_rules):
            disagreements.append(
                f"defect {scenario.defect} not flagged statically "
                f"(expected one of {list(scenario.expect_rules)}, "
                f"got {rules})")
        try:
            outcome = _run_spec(spec, scenario, fast_forward=True)
        except DeadlockError as exc:
            record["dynamic"] = "deadlock"
            if not exc.wait_states:
                disagreements.append(
                    "deadlock raised without a wait-state report")
        except (SplError, ReproError) as exc:
            record["dynamic"] = f"fault:{type(exc).__name__}"
        else:
            record["dynamic"] = "completed"
            disagreements.append(
                f"statically flagged ({rules}) but ran clean in "
                f"{outcome['cycles']} cycles — downgrade candidate")
        return record

    # Expected-clean scenario: static cleanliness, mode agreement, bounds.
    if rules:
        disagreements.append(f"expected clean but flagged: {rules}")
        record["dynamic"] = "skipped"
        return record

    outcomes: Dict[str, Dict[str, Any]] = {}
    first = True
    for codegen in (True, False):
        for fast_forward in (True, False):
            for blockgen in (True, False):
                mode = (f"codegen={'on' if codegen else 'off'},"
                        f"ff={'on' if fast_forward else 'off'},"
                        f"blockgen={'on' if blockgen else 'off'}")
                # The first mode is the default configuration; it reuses
                # the spec already built for linting (workload images are
                # consumed by execution, so every other mode rebuilds).
                mode_spec = spec if first else _build_in_mode(
                    scenario, codegen=codegen)
                first = False
                try:
                    outcomes[mode] = _run_spec(mode_spec, scenario,
                                               fast_forward=fast_forward,
                                               blockgen=blockgen)
                except ReproError as exc:
                    disagreements.append(
                        f"clean scenario failed in mode {mode}: "
                        f"{type(exc).__name__}: {exc}")
    record["dynamic"] = "completed" if outcomes else "failed"
    if len(outcomes) == 8:
        reference_mode = next(iter(outcomes))
        reference = outcomes[reference_mode]
        for mode, outcome in outcomes.items():
            if outcome != reference:
                differing = sorted(
                    key for key in reference
                    if outcome.get(key) != reference.get(key))
                disagreements.append(
                    f"mode {mode} disagrees with {reference_mode} "
                    f"on {differing}")
        record["cycles"] = reference["cycles"]
        results = reference["results"]
        for addr, expected in scenario.golden.items():
            actual = results.get(addr)
            if actual != expected:
                disagreements.append(
                    f"result word @0x{addr:x} is {actual}, host-model "
                    f"golden is {expected}")
        bounds = compute_bounds(spec, unit=unit)
        record["min_cycles_bound"] = bounds.min_cycles
        bound_diags = check_measured(
            bounds, int(reference["cycles"]),
            counters=reference["counters"], unit=unit)
        for diag in bound_diags:
            disagreements.append(f"bounds violation: {diag.render()}")
    return record


def run_fuzz(seeds: Sequence[int]) -> Dict[str, Any]:
    """Fuzz every seed; returns the aggregate report dict."""
    records = [run_scenario(scenario_for_seed(seed)) for seed in seeds]
    disagreements = [
        {"seed": record["seed"], "kind": record["kind"],
         "defect": record["defect"], "problems": record["disagreements"]}
        for record in records if record["disagreements"]]
    return {
        "schema": FUZZ_SCHEMA_VERSION,
        "seeds": [int(seed) for seed in seeds],
        "scenarios": len(records),
        "clean": sum(1 for r in records if r["defect"] is None),
        "defective": sum(1 for r in records if r["defect"] is not None),
        "disagreements": disagreements,
        "records": records,
    }


def render_fuzz_text(report: Dict[str, Any]) -> str:
    lines = [f"{report['scenarios']} scenarios "
             f"({report['clean']} clean, {report['defective']} seeded "
             f"defects)"]
    disagreements = report["disagreements"]
    for entry in disagreements:
        for problem in entry["problems"]:
            lines.append(f"seed {entry['seed']} ({entry['kind']}"
                         f"{'/' + entry['defect'] if entry['defect'] else ''}"
                         f"): {problem}")
    lines.append(f"{len(disagreements)} disagreements")
    return "\n".join(lines)


def write_fuzz_json(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
