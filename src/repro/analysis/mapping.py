"""Static mappability rules for SPL functions and their DFGs.

* **MAP001** (error) — the DFG fails validation, cannot be mapped onto
  SPL rows at all, or the produced mapping violates its own invariants
  (dependence order / row capacity) under some evaluated partition size.
* **MAP002** (error) — the function's feedback initiation interval is
  illegal: a retimed override below 1, or a stateful function whose
  effective II cannot sustain any issue rate.
* **MAP003** (error) — a *stateful* non-barrier function instance is
  bound on more than one slot; its delay-register state would be shared
  between threads (reported from binding tables in ``repro.analysis.lint``
  via :func:`check_shared_state`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.errors import MappingError
from repro.core.dfg import Dfg
from repro.core.function import SplFunction
from repro.core.mapper import initiation_interval, map_dfg, verify_mapping

#: Partition sizes evaluated for library functions when no system spec
#: pins the actual layouts: the full 24-row array and the halved and
#: quartered partitions the experiments sweep.
DEFAULT_PARTITION_ROWS = (24, 12, 6)


def lint_dfg(dfg: Dfg, unit: str,
             partition_rows: Iterable[int] = DEFAULT_PARTITION_ROWS,
             cells_per_row: int = 16) -> List[Diagnostic]:
    """Check that ``dfg`` validates, maps, and virtualizes legally."""
    diagnostics: List[Diagnostic] = []
    try:
        dfg.validate()
        mapping = map_dfg(dfg, cells_per_row)
        verify_mapping(dfg, mapping, cells_per_row)
    except MappingError as exc:
        diagnostics.append(Diagnostic(
            rule="MAP001", severity=Severity.ERROR,
            message=f"dfg does not map: {exc}", unit=unit, dfg=dfg.name))
        return diagnostics
    for rows in partition_rows:
        try:
            initiation_interval(mapping.rows, rows)
        except MappingError as exc:
            diagnostics.append(Diagnostic(
                rule="MAP001", severity=Severity.ERROR,
                message=f"illegal under a {rows}-row partition: {exc}",
                unit=unit, dfg=dfg.name))
    return diagnostics


def lint_function(function: SplFunction, unit: str,
                  partition_rows: Iterable[int] = DEFAULT_PARTITION_ROWS,
                  cells_per_row: int = 16) -> List[Diagnostic]:
    """Check one constructed SPL function (DFG legality + feedback II)."""
    diagnostics = lint_dfg(function.dfg, unit, partition_rows, cells_per_row)
    if function.feedback_ii < 1:
        diagnostics.append(Diagnostic(
            rule="MAP002", severity=Severity.ERROR,
            message=f"feedback initiation interval {function.feedback_ii} "
                    f"< 1 (retimed override below the hardware minimum)",
            unit=unit, dfg=function.dfg.name))
    elif function.is_stateful and \
            function.feedback_ii > function.mapping.rows:
        diagnostics.append(Diagnostic(
            rule="MAP002", severity=Severity.WARNING,
            message=f"feedback initiation interval {function.feedback_ii} "
                    f"exceeds the function depth ({function.mapping.rows} "
                    f"rows); issues serialize behind the feedback path",
            unit=unit, dfg=function.dfg.name))
    return diagnostics


def check_shared_state(bindings: Dict[Tuple[int, int], SplFunction],
                       unit: str) -> List[Diagnostic]:
    """MAP003 over a {(slot, config id): function} binding table."""
    slots_of: Dict[int, set] = {}
    names: Dict[int, str] = {}
    for (slot, _config), function in bindings.items():
        if function.is_stateful and not function.is_barrier:
            slots_of.setdefault(id(function), set()).add(slot)
            names[id(function)] = function.dfg.name
    diagnostics: List[Diagnostic] = []
    for key, slots in sorted(slots_of.items(), key=lambda kv: names[kv[0]]):
        if len(slots) > 1:
            diagnostics.append(Diagnostic(
                rule="MAP003", severity=Severity.ERROR,
                message=f"stateful function instance bound on slots "
                        f"{sorted(slots)}; delay-register state would be "
                        f"shared between threads (bind one instance per "
                        f"slot)",
                unit=unit, dfg=names[key]))
    return diagnostics
