"""Static mappability rules for SPL functions and their DFGs.

* **MAP001** (error) — the DFG fails validation, cannot be mapped onto
  SPL rows at all, or the produced mapping violates its own invariants
  (dependence order / row capacity) under some evaluated partition size.
* **MAP002** (error) — the function's feedback initiation interval is
  illegal: a retimed override below 1, or a stateful function whose
  effective II cannot sustain any issue rate.
* **MAP003** (error) — a *stateful* non-barrier function instance is
  bound on more than one slot; its delay-register state would be shared
  between threads (reported from binding tables in ``repro.analysis.lint``
  via :func:`check_shared_state`).
* **GEN001** (error) — the DFG does not compile to the closure form
  (:func:`repro.core.codegen.compile_dfg`) or the compiled evaluator
  disagrees with the interpreter on a deterministic probe input; the
  simulator would silently fall back to interpretation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.errors import CodegenError, MappingError
from repro.core.codegen import compile_dfg
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.core.mapper import initiation_interval, map_dfg, verify_mapping

#: Partition sizes evaluated for library functions when no system spec
#: pins the actual layouts: the full 24-row array and the halved and
#: quartered partitions the experiments sweep.
DEFAULT_PARTITION_ROWS = (24, 12, 6)


def lint_dfg(dfg: Dfg, unit: str,
             partition_rows: Iterable[int] = DEFAULT_PARTITION_ROWS,
             cells_per_row: int = 16) -> List[Diagnostic]:
    """Check that ``dfg`` validates, maps, and virtualizes legally."""
    diagnostics: List[Diagnostic] = []
    try:
        dfg.validate()
        mapping = map_dfg(dfg, cells_per_row)
        verify_mapping(dfg, mapping, cells_per_row)
    except MappingError as exc:
        diagnostics.append(Diagnostic(
            rule="MAP001", severity=Severity.ERROR,
            message=f"dfg does not map: {exc}", unit=unit, dfg=dfg.name))
        return diagnostics
    for rows in partition_rows:
        try:
            initiation_interval(mapping.rows, rows)
        except MappingError as exc:
            diagnostics.append(Diagnostic(
                rule="MAP001", severity=Severity.ERROR,
                message=f"illegal under a {rows}-row partition: {exc}",
                unit=unit, dfg=dfg.name))
    return diagnostics


def lint_function(function: SplFunction, unit: str,
                  partition_rows: Iterable[int] = DEFAULT_PARTITION_ROWS,
                  cells_per_row: int = 16) -> List[Diagnostic]:
    """Check one constructed SPL function (legality + II + codegen)."""
    diagnostics = lint_dfg(function.dfg, unit, partition_rows, cells_per_row)
    diagnostics += check_codegen(function.dfg, unit)
    if function.feedback_ii < 1:
        diagnostics.append(Diagnostic(
            rule="MAP002", severity=Severity.ERROR,
            message=f"feedback initiation interval {function.feedback_ii} "
                    f"< 1 (retimed override below the hardware minimum)",
            unit=unit, dfg=function.dfg.name))
    elif function.is_stateful and \
            function.feedback_ii > function.mapping.rows:
        diagnostics.append(Diagnostic(
            rule="MAP002", severity=Severity.WARNING,
            message=f"feedback initiation interval {function.feedback_ii} "
                    f"exceeds the function depth ({function.mapping.rows} "
                    f"rows); issues serialize behind the feedback path",
            unit=unit, dfg=function.dfg.name))
    return diagnostics


def check_codegen(dfg: Dfg, unit: str) -> List[Diagnostic]:
    """GEN001: the DFG compiles and the closure matches the interpreter.

    The probe input is deterministic (a fixed multiplicative pattern per
    input, wide enough to exercise the signed-width narrowing) so lint
    output is stable run to run; the randomized sweep lives in
    ``tests/test_codegen.py``.
    """
    try:
        compiled = compile_dfg(dfg)
    except CodegenError as exc:
        return [Diagnostic(
            rule="GEN001", severity=Severity.ERROR,
            message=f"dfg does not compile to a closure: {exc}",
            unit=unit, dfg=dfg.name)]
    inputs = {name: (index + 1) * -2654435761
              for index, name in enumerate(dfg.inputs)}
    stateful = any(node.op is DfgOp.DELAY for node in dfg.nodes)
    try:
        state_ref: Dict[int, int] = {}
        state_got: Dict[int, int] = {}
        reference = dfg.evaluate(dict(inputs),
                                 state=state_ref if stateful else None)
        got = compiled.evaluate(dict(inputs),
                                state_got if stateful else None)
    except MappingError:
        # An unmappable graph is MAP001's finding, not codegen's.
        return []
    if got != reference or state_got != state_ref:
        return [Diagnostic(
            rule="GEN001", severity=Severity.ERROR,
            message="compiled evaluator disagrees with the interpreter "
                    "on the probe input",
            unit=unit, dfg=dfg.name)]
    return []


def check_shared_state(bindings: Dict[Tuple[int, int], SplFunction],
                       unit: str) -> List[Diagnostic]:
    """MAP003 over a {(slot, config id): function} binding table."""
    slots_of: Dict[int, set] = {}
    names: Dict[int, str] = {}
    for (slot, _config), function in bindings.items():
        if function.is_stateful and not function.is_barrier:
            slots_of.setdefault(id(function), set()).add(slot)
            names[id(function)] = function.dfg.name
    diagnostics: List[Diagnostic] = []
    for key, slots in sorted(slots_of.items(), key=lambda kv: names[kv[0]]):
        if len(slots) > 1:
            diagnostics.append(Diagnostic(
                rule="MAP003", severity=Severity.ERROR,
                message=f"stateful function instance bound on slots "
                        f"{sorted(slots)}; delay-register state would be "
                        f"shared between threads (bind one instance per "
                        f"slot)",
                unit=unit, dfg=names[key]))
    return diagnostics
