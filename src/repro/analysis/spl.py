"""SPL protocol verification by abstract interpretation over the CFG.

The abstract state tracks, per program point:

* which staging-entry bytes are *must*-staged (valid on every path) and
  *may*-staged (valid on some path) since the last ``spl_init``;
* how many words the thread has popped (``spl_recv``/``spl_store``), as a
  small set of possible counts that widens to TOP in loops;
* how many times each config id has been issued, likewise.

Rules emitted here (per program); the cross-thread balance rules
(SPL004/005/006) combine the returned :class:`SplSummary` values in
``repro.analysis.lint``:

* **SPL001** (error) — ``spl_init`` names a config id with no binding on
  the issuing core's slot; the simulator raises ``SplError``.
* **SPL002** — staging a byte range that overlaps bytes already staged
  since the last seal; the earlier word is silently overwritten (error
  when the overlap exists on every path, warning when only on some).
* **SPL003** — ``spl_init`` issues a function whose input bytes (for the
  issuing slot, for barrier functions) are not all staged; decoding
  would raise at runtime (error when some byte is staged on no path,
  warning when staged only on some paths).
* **SPL007** (error) — the program executes SPL instructions but runs on
  a core with no SPL port attached.
* **SPL008** — a dedicated-network send seals a staging entry containing
  no fully-valid aligned word; the network raises (error/warning with
  the same must/may split as SPL003).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.analysis.cfg import Cfg
from repro.analysis.dataflow import ForwardAnalysis, exit_states, forward
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.queues import ENTRY_BYTES
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

# -- small integer sets with TOP ---------------------------------------------

#: A set of possible counter values; ``None`` is TOP (unknown, typically a
#: loop-carried count).
IntSet = Optional[FrozenSet[int]]

_CAP_LEN = 8
_CAP_MAX = 64

ZERO: IntSet = frozenset({0})


def _cap(values: FrozenSet[int]) -> IntSet:
    if len(values) > _CAP_LEN or (values and max(values) > _CAP_MAX):
        return None
    return values


def iadd(values: IntSet, k: int) -> IntSet:
    return None if values is None else _cap(frozenset(v + k for v in values))


def ijoin(a: IntSet, b: IntSet) -> IntSet:
    if a is None or b is None:
        return None
    return _cap(a | b)


def iplus(a: IntSet, b: IntSet) -> IntSet:
    """Pairwise sums of two counter sets (TOP-propagating)."""
    if a is None or b is None:
        return None
    return _cap(frozenset(x + y for x in a for y in b))


def imul(a: IntSet, b: IntSet) -> IntSet:
    """Pairwise products of two counter sets (TOP-propagating)."""
    if a is None or b is None:
        return None
    return _cap(frozenset(x * y for x in a for y in b))


def iexact(values: IntSet) -> Optional[int]:
    """The single possible value, or ``None`` when unknown/ambiguous."""
    if values is not None and len(values) == 1:
        return next(iter(values))
    return None


# -- abstract state ----------------------------------------------------------

Issues = Tuple[Tuple[int, IntSet], ...]


@dataclass(frozen=True)
class SplState:
    staged_must: FrozenSet[int] = frozenset()
    staged_may: FrozenSet[int] = frozenset()
    pops: IntSet = ZERO
    issues: Issues = ()

    def issue_count(self, config: int) -> IntSet:
        for key, values in self.issues:
            if key == config:
                return values
        return ZERO

    def with_issue(self, config: int) -> "SplState":
        counts = dict(self.issues)
        counts[config] = iadd(self.issue_count(config), 1)
        return SplState(staged_must=frozenset(), staged_may=frozenset(),
                        pops=self.pops,
                        issues=tuple(sorted(counts.items(),
                                            key=lambda kv: kv[0])))


def _join(a: SplState, b: SplState) -> SplState:
    configs = {key for key, _ in a.issues} | {key for key, _ in b.issues}
    issues = tuple(sorted(
        (config, ijoin(a.issue_count(config), b.issue_count(config)))
        for config in configs))
    return SplState(staged_must=a.staged_must & b.staged_must,
                    staged_may=a.staged_may | b.staged_may,
                    pops=ijoin(a.pops, b.pops),
                    issues=issues)


def _staged_bytes(inst: Instruction) -> Optional[FrozenSet[int]]:
    """Byte offsets written by a staging instruction, else ``None``."""
    if inst.op is Op.SPL_LOAD:
        start, width = inst.imm, 4
    elif inst.op is Op.SPL_LOADM:
        start, width = inst.target, 4
    elif inst.op is Op.SPL_LOADV:
        start, width = inst.target, 16
    else:
        return None
    return frozenset(range(start, min(start + width, ENTRY_BYTES)))


def _transfer(insts: Sequence[Instruction]
              ) -> Callable[[SplState, int], SplState]:
    def transfer(state: SplState, pc: int) -> SplState:
        inst = insts[pc]
        staged = _staged_bytes(inst)
        if staged is not None:
            return SplState(staged_must=state.staged_must | staged,
                            staged_may=state.staged_may | staged,
                            pops=state.pops, issues=state.issues)
        if inst.op is Op.SPL_INIT:
            return state.with_issue(inst.imm)
        if inst.op in (Op.SPL_RECV, Op.SPL_STORE):
            return SplState(staged_must=state.staged_must,
                            staged_may=state.staged_may,
                            pops=iadd(state.pops, 1), issues=state.issues)
        return state
    return transfer


# -- per-thread context and summary ------------------------------------------

@dataclass
class SplContext:
    """What the linter knows about the core a program runs on.

    ``known_configs=None`` means the binding table is unknown (standalone
    program lint) and SPL001/SPL003/SPL008 are skipped.
    """

    port_kind: Optional[str] = None  # "fabric" | "comm" | None (no port)
    known_configs: Optional[FrozenSet[int]] = None
    #: config id -> staging bytes its function decodes (this slot's inputs
    #: for barrier functions); coverage is checked at each ``spl_init``.
    required_bytes: Mapping[int, FrozenSet[int]] = field(default_factory=dict)
    #: config ids bound as dedicated-network point-to-point sends, which
    #: require at least one fully-staged word (SPL008).
    comm_send_configs: FrozenSet[int] = frozenset()


@dataclass
class SplSummary:
    """Joined thread-exit counters for the cross-thread balance rules."""

    has_spl: bool = False
    pops: IntSet = ZERO
    issues: Dict[int, IntSet] = field(default_factory=dict)
    #: Fully-staged word counts observed at each config's ``spl_init``
    #: sites (TOP when any site's staging differs between paths); this is
    #: how many words a dedicated-network send delivers.
    init_words: Dict[int, IntSet] = field(default_factory=dict)


def _full_words(staged: FrozenSet[int]) -> int:
    return sum(1 for offset in range(0, ENTRY_BYTES, 4)
               if all(offset + i in staged for i in range(4)))


def _byte_ranges(missing: FrozenSet[int]) -> str:
    runs: List[Tuple[int, int]] = []
    for offset in sorted(missing):
        if runs and offset == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], offset)
        else:
            runs.append((offset, offset))
    return ", ".join(f"{a}" if a == b else f"{a}..{b}" for a, b in runs)


def analyze_spl(program: Program, cfg: Cfg,
                context: Optional[SplContext] = None,
                unit: str = "") -> Tuple[List[Diagnostic], SplSummary]:
    """Check the SPL protocol rules and summarize exit-time counters."""
    insts = program.instructions
    spl_pcs = [pc for pc, inst in enumerate(insts) if inst.info.is_spl]
    if not spl_pcs:
        return [], SplSummary()

    diagnostics: List[Diagnostic] = []
    if context is not None and context.port_kind is None:
        diagnostics.append(Diagnostic(
            rule="SPL007", severity=Severity.ERROR,
            message=f"{len(spl_pcs)} SPL instructions but the thread's "
                    f"core has no SPL port attached",
            unit=unit, program=program.name, pc=spl_pcs[0]))

    analysis: ForwardAnalysis[SplState] = ForwardAnalysis(
        entry=SplState(), join=_join, transfer=_transfer(insts))
    in_states = forward(analysis, cfg)

    reported: Set[Tuple[str, int]] = set()
    init_words: Dict[int, IntSet] = {}

    def report(rule: str, severity: Severity, pc: int, message: str) -> None:
        if (rule, pc) not in reported:
            reported.add((rule, pc))
            diagnostics.append(Diagnostic(
                rule=rule, severity=severity, message=message,
                unit=unit, program=program.name, pc=pc))

    for index, state in in_states.items():
        for pc in cfg.blocks[index].pcs():
            inst = insts[pc]
            staged = _staged_bytes(inst)
            if staged is not None:
                if staged & state.staged_must:
                    report("SPL002", Severity.ERROR, pc,
                           f"{inst!r} restages bytes "
                           f"{_byte_ranges(staged & state.staged_must)} "
                           f"already staged since the last spl_init; the "
                           f"earlier value is overwritten")
                elif staged & state.staged_may:
                    report("SPL002", Severity.WARNING, pc,
                           f"{inst!r} may restage bytes "
                           f"{_byte_ranges(staged & state.staged_may)} "
                           f"staged on some path since the last spl_init")
            elif inst.op is Op.SPL_INIT:
                config = inst.imm
                if state.staged_must == state.staged_may and \
                        config in init_words:
                    init_words[config] = ijoin(
                        init_words[config],
                        frozenset({_full_words(state.staged_must)}))
                elif state.staged_must == state.staged_may:
                    init_words[config] = frozenset(
                        {_full_words(state.staged_must)})
                else:
                    init_words[config] = None
                if context is None:
                    state = analysis.transfer(state, pc)
                    continue
                known = context.known_configs
                if known is not None and config not in known:
                    report("SPL001", Severity.ERROR, pc,
                           f"spl_init with unbound config id {config} "
                           f"(bound: {sorted(known) or 'none'})")
                elif config in context.required_bytes:
                    required = context.required_bytes[config]
                    never = required - state.staged_may
                    sometimes = required - state.staged_must
                    if never:
                        report("SPL003", Severity.ERROR, pc,
                               f"spl_init({config}) with input bytes "
                               f"{_byte_ranges(never)} never staged; "
                               f"decode would raise at runtime")
                    elif sometimes:
                        report("SPL003", Severity.WARNING, pc,
                               f"spl_init({config}) with input bytes "
                               f"{_byte_ranges(sometimes)} staged only on "
                               f"some paths")
                elif config in context.comm_send_configs:
                    if _full_words(state.staged_may) == 0:
                        report("SPL008", Severity.ERROR, pc,
                               f"network send (config {config}) with no "
                               f"fully staged word; the network raises")
                    elif _full_words(state.staged_must) == 0:
                        report("SPL008", Severity.WARNING, pc,
                               f"network send (config {config}) may seal "
                               f"with no fully staged word on some path")
            state = analysis.transfer(state, pc)

    exits = exit_states(analysis, cfg, in_states)
    if exits:
        final = exits[0]
        for state in exits[1:]:
            final = _join(final, state)
        summary = SplSummary(has_spl=True, pops=final.pops,
                             issues={config: values
                                     for config, values in final.issues},
                             init_words=init_words)
    else:
        # No reachable halt (CFG002 reports that); counters are unknown.
        summary = SplSummary(has_spl=True, pops=None, issues={},
                             init_words=init_words)
    return diagnostics, summary
