"""Whole-machine concurrency verification (the CON rule family).

The per-thread SPL analysis (:mod:`repro.analysis.spl`) abstracts each
program into issue/pop counts; this module assembles those summaries plus
the machine's installed SPL/barrier/dedicated-comm configuration into an
*inter-thread communication graph* and checks cross-thread properties the
per-thread rules cannot see:

* **CON001** — a delivering binding names a destination thread that is
  not resident on the delivering controller: every ``spl_init`` would
  stall forever (error when the thread must issue, warning when it only
  may).
* **CON002** — one thread's input stream is fed by several producer
  threads; pop order then depends on delivery interleaving (note).
* **CON003** — barrier-membership inconsistency: a thread arrives at an
  unregistered barrier or one it is not a participant of (runtime
  ``SplError``), or a registered participant provably never arrives
  while another must (the barrier would never release).
* **CON004** — a wait-for cycle: a set of threads that each provably
  block on a queue pop before issuing anything, fed only by each other
  (static deadlock).
* **CON005** — capacity-sensitive cyclic queue dependency: threads on a
  communication cycle each must issue more fabric requests before their
  first pop than the input queue, fabric, and destination output queue
  can absorb, so every one of them wedges at ``spl_init`` (static
  deadlock even when total send/pop counts balance).

Everything here is static: the machine is built and the workload's
*setup* hook runs (exactly like :func:`repro.analysis.lint.lint_spec`),
but no cycle is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import OFF_END, Cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.spl import IntSet, SplSummary, ZERO, iexact, iplus
from repro.baselines.comm_network import (QUEUE_DEPTH, CommPort,
                                          DedicatedCommController)
from repro.core.controller import CoreSplPort, SplClusterController
from repro.core.tables import MAX_IN_FLIGHT
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.system.machine import Machine

#: Ops that pop one word from the issuing core's output queue.
_POP_OPS = frozenset((Op.SPL_RECV, Op.SPL_STORE))

#: "Unboundedly many" sentinel for pre-pop issue counts.
_INF = 1 << 30

BarrierKey = Tuple[object, ...]


@dataclass
class Delivery:
    """One potential queue-delivery edge ``src -> dest`` of the graph."""

    src: int
    config: int
    kind: str  # "fabric" | "comm"
    dest: int
    #: True when ``dest`` is resident on the delivering controller.
    resident: bool
    #: Possible ``spl_init`` counts of this config at thread exit.
    count: IntSet
    #: Words delivered per issue (``None`` when statically unknown).
    words: IntSet
    #: Destination output-queue capacity in words.
    capacity: int
    #: Issues absorbable by queues + fabric before a guaranteed stall
    #: (``_INF`` for the dedicated comm network, whose sends never block).
    threshold: int


@dataclass
class BarrierUse:
    """All arrivals observed at one barrier id (fabric bus or comm)."""

    key: BarrierKey
    scope: str  # "fabric" | "comm"
    barrier_id: int
    #: Registered participant thread ids, or ``None`` when the barrier
    #: was never registered (arrival raises ``SplError`` at runtime).
    registered: Optional[Tuple[int, ...]]
    arrivals: Dict[int, IntSet] = field(default_factory=dict)


@dataclass
class CommGraph:
    """The inter-thread communication graph of one spec."""

    deliveries: List[Delivery]
    barriers: Dict[BarrierKey, BarrierUse]
    #: Per-thread config ids bound as barrier arrivals.
    barrier_configs: Dict[int, Set[int]]


def _must_pos(count: IntSet) -> bool:
    """The thread issues at least once on *every* path."""
    return count is not None and 0 not in count


def _may_pos(count: IntSet) -> bool:
    """The thread issues at least once on *some* path (or is unknown)."""
    return count is None or any(value > 0 for value in count)


def build_comm_graph(machine: Machine,
                     summaries: Dict[int, SplSummary]) -> CommGraph:
    """Assemble delivery edges and barrier uses from thread summaries."""
    deliveries: List[Delivery] = []
    barriers: Dict[BarrierKey, BarrierUse] = {}
    barrier_configs: Dict[int, Set[int]] = {}

    def arrive(key: BarrierKey, scope: str, barrier_id: int,
               registered: Optional[Tuple[int, ...]], thread_id: int,
               count: IntSet) -> None:
        use = barriers.get(key)
        if use is None:
            use = barriers[key] = BarrierUse(
                key=key, scope=scope, barrier_id=barrier_id,
                registered=registered)
        use.arrivals[thread_id] = iplus(
            use.arrivals.get(thread_id, ZERO), count)

    for thread_id in sorted(summaries):
        summary = summaries[thread_id]
        core = machine.cores[machine.thread_core[thread_id]]
        port = core.spl_port
        if isinstance(port, CoreSplPort):
            fabric: SplClusterController = port.controller
            for config, count in sorted(summary.issues.items()):
                binding = fabric.bindings.get((port.slot, config))
                if binding is None:
                    continue  # SPL001 already reported
                if binding.barrier_id is not None:
                    barrier_configs.setdefault(thread_id, set()).add(config)
                    arrive(("fabric", binding.barrier_id), "fabric",
                           binding.barrier_id,
                           machine.barrier_bus.registered_participants(
                               binding.barrier_id),
                           thread_id, count)
                    continue
                dest = binding.dest_thread
                resident = True
                if dest is None:
                    dest = thread_id  # individual computation: self-deliver
                else:
                    resident = fabric.table.lookup(dest) is not None
                function = binding.function
                n_out = max(1, function.n_outputs)
                partition = fabric.partitions[
                    fabric.core_partition[port.slot]]
                capacity = fabric.config.output_queue_words
                threshold = (fabric.config.input_queue_entries
                             + partition.rows + MAX_IN_FLIGHT
                             + capacity // n_out)
                deliveries.append(Delivery(
                    src=thread_id, config=config, kind="fabric", dest=dest,
                    resident=resident, count=count,
                    words=frozenset({function.n_outputs}),
                    capacity=capacity, threshold=threshold))
        elif isinstance(port, CommPort):
            comm: DedicatedCommController = port.controller
            for config, count in sorted(summary.issues.items()):
                comm_binding = comm.bindings.get((port.slot, config))
                if comm_binding is None:
                    continue
                if comm_binding.barrier_id is not None:
                    barrier_configs.setdefault(thread_id, set()).add(config)
                    arrive(("comm", id(comm), comm_binding.barrier_id),
                           "comm", comm_binding.barrier_id,
                           comm.registered_participants(
                               comm_binding.barrier_id),
                           thread_id, count)
                    continue
                dest = comm_binding.dest_thread
                assert dest is not None  # comm sends always name a dest
                deliveries.append(Delivery(
                    src=thread_id, config=config, kind="comm", dest=dest,
                    resident=comm.slot_of(dest) is not None, count=count,
                    words=summary.init_words.get(config),
                    capacity=QUEUE_DEPTH, threshold=_INF))
    return CommGraph(deliveries, barriers, barrier_configs)


# -- CON001 / CON002: queue endpoints -----------------------------------------


def _endpoint_diagnostics(graph: CommGraph,
                          unit: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for delivery in graph.deliveries:
        if delivery.resident or not _may_pos(delivery.count):
            continue
        severity = (Severity.ERROR if _must_pos(delivery.count)
                    else Severity.WARNING)
        diagnostics.append(Diagnostic(
            rule="CON001", severity=severity,
            message=f"thread {delivery.src} sends config {delivery.config} "
                    f"to thread {delivery.dest}, which is not resident on "
                    f"its {delivery.kind} controller; every spl_init would "
                    f"stall forever",
            unit=unit))
    producers: Dict[int, Set[int]] = {}
    for delivery in graph.deliveries:
        if delivery.resident and _may_pos(delivery.count):
            producers.setdefault(delivery.dest, set()).add(delivery.src)
    for dest in sorted(producers):
        srcs = sorted(producers[dest])
        if len(srcs) > 1:
            diagnostics.append(Diagnostic(
                rule="CON002", severity=Severity.NOTE,
                message=f"thread {dest}'s input queue is fed by "
                        f"{len(srcs)} producer threads {srcs}; pop order "
                        f"depends on delivery interleaving",
                unit=unit))
    return diagnostics


# -- CON003: barrier membership -----------------------------------------------


def _barrier_diagnostics(graph: CommGraph, unit: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for key in sorted(graph.barriers, key=str):
        use = graph.barriers[key]
        arriving = {thread: count for thread, count in use.arrivals.items()
                    if _may_pos(count)}
        if use.registered is None:
            for thread in sorted(arriving):
                severity = (Severity.ERROR if _must_pos(arriving[thread])
                            else Severity.WARNING)
                diagnostics.append(Diagnostic(
                    rule="CON003", severity=severity,
                    message=f"thread {thread} arrives at barrier "
                            f"{use.barrier_id}, which was never registered "
                            f"on the {use.scope} side; the arrival raises "
                            f"SplError at runtime",
                    unit=unit))
            continue
        registered = set(use.registered)
        for thread in sorted(arriving):
            if thread not in registered:
                severity = (Severity.ERROR if _must_pos(arriving[thread])
                            else Severity.WARNING)
                diagnostics.append(Diagnostic(
                    rule="CON003", severity=severity,
                    message=f"thread {thread} arrives at barrier "
                            f"{use.barrier_id} but is not among its "
                            f"registered participants "
                            f"{sorted(registered)}; the arrival raises "
                            f"SplError at runtime",
                    unit=unit))
        must_arrive = sorted(
            thread for thread in arriving
            if thread in registered and _must_pos(arriving[thread]))
        if not must_arrive:
            continue
        for thread in sorted(registered):
            count = use.arrivals.get(thread)
            if count is not None and iexact(count) != 0:
                continue
            if count is None and thread in use.arrivals:
                continue  # unknown arrival count: may still arrive
            witness = next(t for t in must_arrive if t != thread) \
                if any(t != thread for t in must_arrive) else None
            if witness is None:
                continue
            diagnostics.append(Diagnostic(
                rule="CON003", severity=Severity.ERROR,
                message=f"registered participant thread {thread} never "
                        f"arrives at barrier {use.barrier_id} while thread "
                        f"{witness} must arrive; the barrier would never "
                        f"release",
                unit=unit))
    return diagnostics


# -- CFG walks shared by CON004 / CON005 --------------------------------------


def _successor_pcs(cfg: Cfg, pc: int) -> Optional[List[int]]:
    """Successor pcs of ``pc``, or ``None`` when it may run off the end."""
    block = cfg.blocks[cfg.block_of_pc[pc]]
    if pc + 1 < block.end:
        return [pc + 1]
    succs: List[int] = []
    for index in block.successors:
        if index == OFF_END:
            return None
        succs.append(cfg.blocks[index].start)
    return succs


def _has_cycle(edges: Dict[int, List[int]]) -> bool:
    """Iterative three-color DFS cycle check over ``edges``."""
    white, grey, black = 0, 1, 2
    color = {node: white for node in edges}
    for root in edges:
        if color[root] != white:
            continue
        color[root] = grey
        stack = [(root, iter(edges[root]))]
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                state = color.get(nxt, black)
                if state == grey:
                    return True
                if state == white:
                    color[nxt] = grey
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = black
                stack.pop()
    return False


def _pop_gate(program: Program, cfg: Cfg) -> bool:
    """True iff every execution pops before it can issue, halt, or exit.

    The walk cuts at the first pop on each path; reaching ``spl_init``,
    ``halt``, or the end of the program first — or being able to loop
    forever without popping — disproves the guarantee.
    """
    if cfg.has_indirect or not program.instructions:
        return False
    insts = program.instructions
    edges: Dict[int, List[int]] = {}
    found_pop = False
    seen: Set[int] = set()
    stack = [0]
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        op = insts[pc].op
        if op in _POP_OPS:
            found_pop = True
            edges[pc] = []
            continue
        if op is Op.SPL_INIT or op is Op.HALT:
            return False
        succs = _successor_pcs(cfg, pc)
        if succs is None:
            return False
        edges[pc] = succs
        stack.extend(succs)
    return found_pop and not _has_cycle(edges)


def _prepop_min_issues(program: Program, cfg: Cfg, config: int,
                       barrier_configs: FrozenSet[int]) -> Optional[int]:
    """Guaranteed ``spl_init config`` count before the first pop.

    Returns ``None`` when the thread may halt, fall off the end, arrive
    at a barrier, or spin forever without issuing ``config`` before its
    first pop — i.e. when no wedge is provable.  ``_INF`` means every
    path keeps issuing without ever popping.
    """
    if cfg.has_indirect or not program.instructions:
        return None
    import heapq
    insts = program.instructions
    dist: Dict[int, int] = {0: 0}
    heap: List[Tuple[int, int]] = [(0, 0)]
    edges: Dict[int, List[int]] = {}
    weight: Dict[int, int] = {}
    pop_best: Optional[int] = None
    while heap:
        issued, pc = heapq.heappop(heap)
        if issued > dist.get(pc, _INF):
            continue
        op = insts[pc].op
        if op in _POP_OPS:
            pop_best = issued if pop_best is None else min(pop_best, issued)
            edges[pc] = []
            weight[pc] = 0
            continue
        if op is Op.HALT:
            return None
        step = 0
        if op is Op.SPL_INIT:
            if insts[pc].imm in barrier_configs:
                return None  # pre-pop barrier arrival: no wedge claim
            if insts[pc].imm == config:
                step = 1
        succs = _successor_pcs(cfg, pc)
        if succs is None:
            return None
        edges[pc] = succs
        weight[pc] = step
        for nxt in succs:
            candidate = issued + step
            if candidate < dist.get(nxt, _INF):
                dist[nxt] = candidate
                heapq.heappush(heap, (candidate, nxt))
    # A pop-free cycle that issues nothing of ``config`` allows spinning
    # forever at a bounded issue count: no guaranteed wedge.
    zero_nodes = {pc for pc in edges if weight.get(pc, 0) == 0}
    zero_edges = {pc: [nxt for nxt in edges[pc] if nxt in zero_nodes]
                  for pc in zero_nodes}
    if _has_cycle(zero_edges):
        return None
    return pop_best if pop_best is not None else _INF


# -- CON004: wait-for-graph cycles --------------------------------------------


def _deadlock_diagnostics(graph: CommGraph, programs: Dict[int, Program],
                          cfgs: Dict[int, Cfg],
                          unit: str) -> List[Diagnostic]:
    blocked = {thread for thread in programs
               if _pop_gate(programs[thread], cfgs[thread])}
    if not blocked:
        return []
    feeders: Dict[int, Set[int]] = {}
    for delivery in graph.deliveries:
        if delivery.resident and _may_pos(delivery.count):
            feeders.setdefault(delivery.dest, set()).add(delivery.src)
    changed = True
    while changed:
        changed = False
        for thread in sorted(blocked):
            if any(src not in blocked for src in feeders.get(thread, ())):
                blocked.discard(thread)
                changed = True
    cycle_threads = sorted(t for t in blocked if feeders.get(t))
    if not cycle_threads:
        return []  # fed by nothing at all: SPL005's territory
    detail = "; ".join(
        f"thread {thread} waits on "
        f"{sorted(feeders[thread] & blocked)}"
        for thread in cycle_threads)
    return [Diagnostic(
        rule="CON004", severity=Severity.ERROR,
        message=f"static deadlock: threads {cycle_threads} each block on "
                f"a queue pop before issuing anything, and every thread "
                f"that could feed them is itself blocked ({detail})",
        unit=unit)]


# -- CON005: capacity-sensitive cycles ----------------------------------------


def _capacity_diagnostics(graph: CommGraph, programs: Dict[int, Program],
                          cfgs: Dict[int, Cfg],
                          unit: str) -> List[Diagnostic]:
    wedge: Dict[int, Set[int]] = {}
    detail: Dict[int, str] = {}
    for delivery in graph.deliveries:
        if delivery.kind != "fabric" or not delivery.resident:
            continue
        if delivery.src not in programs:
            continue
        issues = _prepop_min_issues(
            programs[delivery.src], cfgs[delivery.src], delivery.config,
            frozenset(graph.barrier_configs.get(delivery.src, set())))
        if issues is None or issues <= delivery.threshold:
            continue
        wedge.setdefault(delivery.src, set()).add(delivery.dest)
        shown = "unboundedly many" if issues >= _INF else str(issues)
        detail[delivery.src] = (
            f"thread {delivery.src} must issue {shown} config-"
            f"{delivery.config} requests before its first pop but the "
            f"queues toward thread {delivery.dest} absorb at most "
            f"{delivery.threshold}")
    on_cycle = _nodes_on_cycle(wedge)
    if not on_cycle:
        return []
    message = "; ".join(detail[thread] for thread in sorted(on_cycle))
    return [Diagnostic(
        rule="CON005", severity=Severity.ERROR,
        message=f"capacity-sensitive deadlock on threads "
                f"{sorted(on_cycle)}: {message}; no queue on the cycle "
                f"can ever drain",
        unit=unit)]


def _nodes_on_cycle(edges: Dict[int, Set[int]]) -> Set[int]:
    """Nodes that can reach themselves through ``edges``."""
    result: Set[int] = set()
    for start in edges:
        seen: Set[int] = set()
        stack = list(edges[start])
        while stack:
            node = stack.pop()
            if node == start:
                result.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
    return result


# -- entry point --------------------------------------------------------------


def check_concurrency(machine: Machine, summaries: Dict[int, SplSummary],
                      programs: Dict[int, Program], cfgs: Dict[int, Cfg],
                      unit: str = "") -> List[Diagnostic]:
    """Run every CON rule over one spec's communication graph."""
    graph = build_comm_graph(machine, summaries)
    diagnostics = _endpoint_diagnostics(graph, unit)
    diagnostics += _barrier_diagnostics(graph, unit)
    diagnostics += _deadlock_diagnostics(graph, programs, cfgs, unit)
    diagnostics += _capacity_diagnostics(graph, programs, cfgs, unit)
    return diagnostics
