"""Program and memory-image containers.

A :class:`Program` is an ordered list of instructions with resolved branch
targets; each simulated thread executes one program.  A
:class:`MemoryImage` is a bump-allocated description of initial memory
contents, shared by all threads of a workload and applied to simulated main
memory when a machine is loaded.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.errors import AssemblyError, MemoryFault
from repro.common.utils import to_unsigned
from repro.isa.instruction import Instruction


class Program:
    """An assembled instruction sequence with a label table."""

    def __init__(self, name: str, instructions: List[Instruction],
                 labels: Dict[str, int]) -> None:
        self.name = name
        self.instructions = instructions
        self.labels = dict(labels)
        #: (rule, message) label-hygiene findings attached by the
        #: assembler; ``repro.analysis`` turns them into diagnostics.
        self.label_diagnostics: List[tuple] = []
        self._resolve()

    def _resolve(self) -> None:
        n = len(self.instructions)
        for index, inst in enumerate(self.instructions):
            inst.index = index
            if isinstance(inst.target, str):
                if inst.target not in self.labels:
                    raise AssemblyError(
                        f"{self.name}: undefined label {inst.target!r}")
                inst.target = self.labels[inst.target]
            # Only control transfers carry a pc in ``target``; the SPL
            # staging loads reuse the field for a staging-entry offset.
            if inst.info.is_branch and inst.target is not None and \
                    not 0 <= inst.target < n:
                raise AssemblyError(
                    f"{self.name}: {inst!r} at pc {index} targets pc "
                    f"{inst.target}, outside the program (0..{n - 1})")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def listing(self) -> str:
        """Human-readable assembly listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"  {index:4d}  {inst!r}")
        return "\n".join(lines)


class MemoryImage:
    """Initial memory contents plus a bump allocator.

    Addresses are byte addresses; allocation is word-aligned by default.
    The image starts allocating at ``base`` so that low memory can be left
    for workload-specific fixed addresses if needed.
    """

    def __init__(self, base: int = 0x1000, size_limit: int = 1 << 26) -> None:
        if base % 4 != 0:
            raise MemoryFault("image base must be word aligned")
        self.base = base
        self.size_limit = size_limit
        self._next = base
        self.words: Dict[int, int] = {}  # word address (byte addr // 4) -> value

    @property
    def limit(self) -> int:
        """One past the highest allocated byte address."""
        return self._next

    def alloc(self, nbytes: int, align: int = 4) -> int:
        if nbytes < 0:
            raise MemoryFault("negative allocation")
        addr = -(-self._next // align) * align
        self._next = addr + nbytes
        if self._next > self.size_limit:
            raise MemoryFault("memory image exceeds size limit")
        return addr

    def alloc_words(self, values: Sequence[int]) -> int:
        """Allocate and initialize a word array; returns base address."""
        addr = self.alloc(4 * len(values))
        for i, value in enumerate(values):
            self.write_word(addr + 4 * i, value)
        return addr

    def alloc_bytes(self, data: bytes) -> int:
        addr = self.alloc(len(data))
        self.write_bytes(addr, data)
        return addr

    def alloc_zeroed(self, nwords: int) -> int:
        return self.alloc_words([0] * nwords)

    def write_word(self, addr: int, value: int) -> None:
        if addr % 4 != 0:
            raise MemoryFault(f"unaligned word write at {addr:#x}")
        self.words[addr >> 2] = to_unsigned(value)

    def read_word(self, addr: int) -> int:
        if addr % 4 != 0:
            raise MemoryFault(f"unaligned word read at {addr:#x}")
        return self.words.get(addr >> 2, 0)

    def write_bytes(self, addr: int, data: bytes) -> None:
        for offset, byte in enumerate(data):
            byte_addr = addr + offset
            word = self.words.get(byte_addr >> 2, 0)
            shift = (byte_addr & 3) * 8
            word = (word & ~(0xFF << shift)) | (byte << shift)
            self.words[byte_addr >> 2] = word

    def write_float(self, addr: int, value: float) -> None:
        self.write_word(addr, struct.unpack("<I", struct.pack("<f", value))[0])

    def items(self) -> Iterable:
        return self.words.items()


class ThreadSpec:
    """One thread of a workload: a program plus initial register values."""

    def __init__(self, program: Program, thread_id: int,
                 int_regs: Optional[Dict[str, int]] = None,
                 fp_regs: Optional[Dict[str, float]] = None,
                 app_id: int = 1) -> None:
        self.program = program
        self.thread_id = thread_id
        self.app_id = app_id
        self.int_regs = dict(int_regs or {})
        self.fp_regs = dict(fp_regs or {})
