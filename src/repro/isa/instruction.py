"""Instruction and register representations.

Registers are encoded as small integers: ``r0``..``r31`` map to 0..31 and
``f0``..``f31`` map to 32..63.  ``r0`` is hardwired to zero.  Instructions
are plain slotted objects because the simulator touches them constantly.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import AssemblyError
from repro.isa.opcodes import Fmt, FuClass, Op, OpInfo, info

N_INT_REGS = 32
N_FP_REGS = 32
N_ARCH_REGS = N_INT_REGS + N_FP_REGS
ZERO_REG = 0
FP_BASE = N_INT_REGS

#: Bits of ``Instruction.held_mask`` — the back-end resources one in-flight
#: instance of the instruction occupies (issue-queue slot, load/store-queue
#: slot, rename register).  The pipeline copies the mask onto each ROB
#: entry at dispatch and clears bits as the resources release.
HOLD_INT_IQ = 1
HOLD_FP_IQ = 2
HOLD_LQ = 4
HOLD_SQ = 8
HOLD_REN_INT = 16
HOLD_REN_FP = 32

#: ``Instruction.fetch_kind`` values — the fetch-stage classification the
#: pipeline's ``_predict_next`` switches on, precomputed at decode so the
#: trace-cache block compiler (repro.cpu.blockgen) can drive its fetch
#: table off one small int per instruction.
FETCH_SEQ = 0      # straight-line: next pc is pc + 1, no predictor access
FETCH_COND = 1     # conditional branch: direction predictor vs pc + 1
FETCH_JUMP = 2     # J: unconditional direct target
FETCH_CALL = 3     # JAL: push RAS, then direct target
FETCH_RET = 4      # JR: pop RAS / BTB, may stall fetch unresolved
FETCH_HALT = 5     # HALT: fetch stops dead after this instruction

_COND_BRANCH_OPS = frozenset(
    (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU))


def reg_index(name: str) -> int:
    """Translate ``"r5"`` / ``"f3"`` into the flat register index."""
    if len(name) < 2 or name[0] not in "rf":
        raise AssemblyError(f"bad register name {name!r}")
    try:
        num = int(name[1:])
    except ValueError as exc:
        raise AssemblyError(f"bad register name {name!r}") from exc
    limit = N_INT_REGS if name[0] == "r" else N_FP_REGS
    if not 0 <= num < limit:
        raise AssemblyError(f"register {name!r} out of range")
    return num if name[0] == "r" else FP_BASE + num


def reg_name(index: int) -> str:
    if 0 <= index < FP_BASE:
        return f"r{index}"
    if FP_BASE <= index < N_ARCH_REGS:
        return f"f{index - FP_BASE}"
    raise AssemblyError(f"register index {index} out of range")


def is_fp(index: int) -> bool:
    return index >= FP_BASE


class Instruction:
    """One decoded instruction.

    ``target`` holds a label name until the assembler resolves it to an
    instruction index.  ``rd``/``rs1``/``rs2`` are flat register indices or
    None.

    Decode metadata is precomputed at construction: ``info`` is a plain
    attribute (not a table lookup per access) and the written register and
    renameable sources are cached, since the fetch/rename/dispatch fast
    path of the pipeline touches them every cycle.  This is safe because
    ``op``/``rd``/``rs1``/``rs2`` never change after construction — only
    ``target`` is patched later (label resolution), and it feeds none of
    the cached values.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "target", "index",
                 "info", "_dest", "_sources", "needs_fp_iq", "needs_int_iq",
                 "uses_lq", "uses_sq", "dest_fp", "held_mask", "fetch_kind")

    def __init__(self, op: Op, rd: Optional[int] = None,
                 rs1: Optional[int] = None, rs2: Optional[int] = None,
                 imm: int = 0, target=None) -> None:
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.index: int = -1  # set when added to a program
        op_info: OpInfo = info(op)
        self.info = op_info
        self._dest: Optional[int] = (
            rd if op_info.writes_rd and rd is not None and rd != ZERO_REG
            else None)
        regs = []
        if rs1 is not None and rs1 != ZERO_REG:
            regs.append(rs1)
        if rs2 is not None and rs2 != ZERO_REG:
            regs.append(rs2)
        self._sources = regs
        # Dispatch template: which back-end resources this instruction
        # claims.  The pipeline's dispatch stage (and its stall-key
        # mirror) consults these every attempt, so they are resolved here
        # once per instruction rather than re-derived per cycle.
        serialize = op_info.serialize
        self.needs_fp_iq: bool = op_info.fu is FuClass.FP and not serialize
        self.needs_int_iq: bool = not self.needs_fp_iq and not serialize
        self.uses_lq: bool = op_info.is_load and not serialize
        self.uses_sq: bool = op_info.is_store and not serialize
        self.dest_fp: bool = self._dest is not None and self._dest >= FP_BASE
        held = 0
        if self.needs_fp_iq:
            held |= HOLD_FP_IQ
        if self.needs_int_iq:
            held |= HOLD_INT_IQ
        if self.uses_lq:
            held |= HOLD_LQ
        if self.uses_sq:
            held |= HOLD_SQ
        if self._dest is not None:
            held |= HOLD_REN_FP if self.dest_fp else HOLD_REN_INT
        self.held_mask: int = held
        if op is Op.HALT:
            kind = FETCH_HALT
        elif not op_info.is_branch:
            kind = FETCH_SEQ
        elif op in _COND_BRANCH_OPS:
            kind = FETCH_COND
        elif op is Op.J:
            kind = FETCH_JUMP
        elif op is Op.JAL:
            kind = FETCH_CALL
        else:  # JR
            kind = FETCH_RET
        self.fetch_kind: int = kind

    def sources(self):
        """Register indices read by this instruction (excluding r0)."""
        return list(self._sources)

    def dest(self) -> Optional[int]:
        """Register written, or None (writes to r0 are discarded)."""
        return self._dest

    def __repr__(self) -> str:
        parts = [self.op.value]
        fmt = self.info.fmt
        if fmt in (Fmt.RRR,):
            parts.append(f"{reg_name(self.rd)}, {reg_name(self.rs1)}, "
                         f"{reg_name(self.rs2)}")
        elif fmt in (Fmt.RRI,):
            parts.append(f"{reg_name(self.rd)}, {reg_name(self.rs1)}, "
                         f"{self.imm}")
        elif fmt is Fmt.RI:
            parts.append(f"{reg_name(self.rd)}, {self.imm}")
        elif fmt is Fmt.BRANCH:
            parts.append(f"{reg_name(self.rs1)}, {reg_name(self.rs2)}, "
                         f"{self.target}")
        elif fmt is Fmt.JUMP:
            parts.append(str(self.target))
        elif fmt is Fmt.JREG:
            parts.append(reg_name(self.rs1))
        elif fmt is Fmt.MEM_LOAD:
            parts.append(f"{reg_name(self.rd)}, {self.imm}"
                         f"({reg_name(self.rs1)})")
        elif fmt is Fmt.MEM_STORE:
            parts.append(f"{reg_name(self.rs2)}, {self.imm}"
                         f"({reg_name(self.rs1)})")
        elif fmt is Fmt.AMO:
            parts.append(f"{reg_name(self.rd)}, {reg_name(self.rs2)}, "
                         f"({reg_name(self.rs1)})")
        elif fmt is Fmt.SPL_LOAD:
            parts.append(f"{reg_name(self.rs1)}, offset={self.imm}")
        elif fmt is Fmt.SPL_LOADM:
            parts.append(f"({reg_name(self.rs1)}), offset={self.imm}")
        elif fmt is Fmt.SPL_INIT:
            parts.append(f"config={self.imm}")
        elif fmt is Fmt.SPL_RECV:
            parts.append(reg_name(self.rd))
        elif fmt is Fmt.SPL_STORE:
            parts.append(f"{self.imm}({reg_name(self.rs1)})")
        return " ".join(p for p in parts if p)
