"""A functional (golden-model) interpreter for the ISA.

Executes programs sequentially with no timing, used as the oracle for
differential testing of the out-of-order pipeline: any program that runs
on the cycle-level simulator must produce exactly the same architectural
state here.  SPL instructions are interpreted against a caller-provided
functional fabric model (:class:`FunctionalSpl`), which evaluates the same
:class:`repro.core.function.SplFunction` objects the timing simulator
uses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.core.queues import StagingEntry
from repro.cpu.exec import alu, branch_taken, fp
from repro.isa.instruction import FP_BASE, N_FP_REGS, N_INT_REGS
from repro.isa.opcodes import FuClass, Op
from repro.isa.program import Program
from repro.mem.memory import MainMemory


class FunctionalSpl:
    """Zero-latency functional model of one core's SPL interface."""

    def __init__(self) -> None:
        self.bindings: Dict[int, object] = {}
        self.dest_queues: Dict[int, "FunctionalSpl"] = {}
        self.staging = StagingEntry()
        self.output: Deque[int] = deque()

    def configure(self, config_id: int, function,
                  dest: Optional["FunctionalSpl"] = None) -> None:
        self.bindings[config_id] = (function, dest or self)

    def stage(self, value: int, offset: int) -> None:
        self.staging.write_word(value, offset)

    def init(self, config_id: int) -> None:
        if config_id not in self.bindings:
            raise SimulationError(f"unbound SPL config {config_id}")
        function, dest = self.bindings[config_id]
        data, valid, _ = self.staging.seal()
        for word in function.evaluate_entry(data, valid):
            dest.output.append(word)

    def recv(self) -> int:
        if not self.output:
            raise SimulationError("functional SPL recv on empty queue")
        return self.output.popleft()


class Interpreter:
    """Sequential, in-order execution of one program."""

    def __init__(self, program: Program, memory: MainMemory,
                 spl: Optional[FunctionalSpl] = None,
                 max_steps: int = 10_000_000) -> None:
        self.program = program
        self.memory = memory
        self.spl = spl
        self.max_steps = max_steps
        self.int_regs: List[int] = [0] * N_INT_REGS
        self.fp_regs: List[float] = [0.0] * N_FP_REGS
        self.pc = 0
        self.steps = 0
        self.halted = False

    # -- register helpers ---------------------------------------------------------

    def _read(self, reg: Optional[int]):
        if reg is None:
            return 0
        if reg < FP_BASE:
            return self.int_regs[reg]
        return self.fp_regs[reg - FP_BASE]

    def _write(self, reg: Optional[int], value) -> None:
        if reg is None or reg == 0:
            return
        if reg < FP_BASE:
            self.int_regs[reg] = value
        else:
            self.fp_regs[reg - FP_BASE] = value

    # -- execution -----------------------------------------------------------------

    def run(self) -> int:
        """Execute until HALT; returns the number of instructions."""
        while not self.halted:
            self.step()
        return self.steps

    def step(self) -> None:
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise SimulationError(f"PC {self.pc} out of program")
        if self.steps >= self.max_steps:
            raise SimulationError("interpreter step limit exceeded")
        inst = self.program[self.pc]
        self.steps += 1
        op = inst.op
        info = inst.info
        next_pc = self.pc + 1
        a = self._read(inst.rs1)
        b = self._read(inst.rs2)
        if op is Op.HALT:
            self.halted = True
        elif info.is_branch:
            next_pc = self._branch(inst, a)
        elif op in (Op.AMO_ADD, Op.AMO_SWAP):
            old = self.memory.read_word_signed(a)
            new = old + b if op is Op.AMO_ADD else b
            self.memory.write_word(a, new & 0xFFFFFFFF)
            self._write(inst.rd, old)
        elif info.is_load:
            self._load(inst, a)
        elif info.is_store:
            self._store(inst, a, b)
        elif op is Op.FENCE:
            pass
        elif info.is_spl:
            self._spl(inst, a)
        elif info.fu is FuClass.FP:
            self._write(inst.rd, fp(op, a, b))
        else:
            self._write(inst.rd, alu(op, a, b, inst.imm))
        self.pc = next_pc

    def _branch(self, inst, a: int) -> int:
        op = inst.op
        if op is Op.J:
            return inst.target
        if op is Op.JAL:
            self._write(inst.rd, self.pc + 1)
            return inst.target
        if op is Op.JR:
            return a
        taken = branch_taken(op, a, self._read(inst.rs2))
        return inst.target if taken else self.pc + 1

    def _load(self, inst, base: int) -> None:
        addr = base + inst.imm
        op = inst.op
        if op is Op.LW:
            value = self.memory.read_word_signed(addr)
        elif op is Op.LB:
            raw = self.memory.read_byte(addr)
            value = raw - 256 if raw >= 128 else raw
        elif op is Op.LBU:
            value = self.memory.read_byte(addr)
        elif op is Op.LH:
            raw = self.memory.read_half(addr)
            value = raw - 65536 if raw >= 32768 else raw
        elif op is Op.LHU:
            value = self.memory.read_half(addr)
        elif op is Op.FLW:
            value = self.memory.read_float(addr)
        else:  # pragma: no cover
            raise SimulationError(f"bad load {op}")
        self._write(inst.rd, value)

    def _store(self, inst, base: int, value) -> None:
        addr = base + inst.imm
        op = inst.op
        if op is Op.SW:
            self.memory.write_word(addr, value & 0xFFFFFFFF)
        elif op is Op.SB:
            self.memory.write_byte(addr, value & 0xFF)
        elif op is Op.SH:
            self.memory.write_half(addr, value & 0xFFFF)
        elif op is Op.FSW:
            self.memory.write_float(addr, value)
        else:  # pragma: no cover
            raise SimulationError(f"bad store {op}")

    def _spl(self, inst, a: int) -> None:
        if self.spl is None:
            raise SimulationError("program uses SPL ops but no functional "
                                  "SPL was provided")
        op = inst.op
        if op is Op.SPL_LOAD:
            self.spl.stage(a, inst.imm)
        elif op is Op.SPL_LOADM:
            self.spl.stage(self.memory.read_word_signed(a + inst.imm),
                           inst.target)
        elif op is Op.SPL_LOADV:
            for i in range(4):
                self.spl.stage(
                    self.memory.read_word_signed(a + inst.imm + 4 * i),
                    inst.target + 4 * i)
        elif op is Op.SPL_INIT:
            self.spl.init(inst.imm)
        elif op is Op.SPL_RECV:
            self._write(inst.rd, self.spl.recv())
        elif op is Op.SPL_STORE:
            self.memory.write_word(a + inst.imm,
                                   self.spl.recv() & 0xFFFFFFFF)
        else:  # pragma: no cover
            raise SimulationError(f"bad spl op {op}")
