"""Custom RISC ISA: opcodes, instructions, assembler, programs."""

from repro.isa.assembler import Asm
from repro.isa.instruction import Instruction, reg_index, reg_name
from repro.isa.opcodes import FuClass, Op, OpInfo, info
from repro.isa.program import MemoryImage, Program, ThreadSpec

__all__ = [
    "Asm", "Instruction", "reg_index", "reg_name",
    "FuClass", "Op", "OpInfo", "info",
    "MemoryImage", "Program", "ThreadSpec",
]
