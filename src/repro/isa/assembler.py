"""A tiny macro assembler.

Workload builders construct programs through an :class:`Asm` instance whose
methods mirror the opcodes::

    a = Asm("loop_demo")
    a.li("r1", 0)
    a.label("loop")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.halt()
    program = a.assemble()

Operand order follows the formats in :mod:`repro.isa.opcodes`:

* ``a.add(rd, rs1, rs2)``, ``a.addi(rd, rs1, imm)``, ``a.li(rd, imm)``
* ``a.lw(rd, base, offset=0)`` loads ``mem[base + offset]``
* ``a.sw(src, base, offset=0)`` stores ``src`` to ``mem[base + offset]``
* ``a.amo_add(rd, addr, operand)`` atomically ``rd = mem[addr];
  mem[addr] += operand``
* ``a.beq(rs1, rs2, label)`` ... ``a.j(label)`` ... ``a.jr(rs1)``
* ``a.spl_load(src, offset)``, ``a.spl_init(config)``, ``a.spl_recv(rd)``,
  ``a.spl_store(base, offset=0)``

plus a few pseudo-instruction helpers (``mov``, ``bgt``, ``ble``, ``neg``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.common.errors import AssemblyError
from repro.isa.instruction import Instruction, reg_index
from repro.isa.opcodes import Fmt, Op, info
from repro.isa.program import Program

Reg = Union[str, int]


def _reg(value: Reg) -> int:
    return reg_index(value) if isinstance(value, str) else value


class Asm:
    """Accumulates instructions and labels, then assembles a Program."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._label_seq = 0
        self._fresh: List[str] = []

    # -- core emission -----------------------------------------------------

    def emit(self, inst: Instruction) -> Instruction:
        self._insts.append(inst)
        return inst

    def label(self, name: str) -> str:
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        self._label_seq += 1
        name = f"__{hint}_{self._label_seq}"
        self._fresh.append(name)
        return name

    def here(self) -> int:
        return len(self._insts)

    def assemble(self) -> Program:
        if not self._insts:
            raise AssemblyError(f"{self.name}: empty program")
        # Collect referenced label names before Program._resolve rewrites
        # targets to pcs in place.
        referenced = {inst.target for inst in self._insts
                      if isinstance(inst.target, str)}
        findings = []
        for name in sorted(set(self._labels) - referenced):
            findings.append(
                ("LBL001", f"label {name!r} is placed but never "
                           f"referenced"))
        for name in self._fresh:
            if name not in self._labels and name not in referenced:
                findings.append(
                    ("LBL002", f"fresh_label {name!r} was created but "
                               f"never placed or referenced"))
        program = Program(self.name, self._insts, self._labels)
        program.label_diagnostics = findings
        return program

    # -- generic opcode dispatch --------------------------------------------

    def _op(self, op: Op, *args) -> Instruction:
        fmt = info(op).fmt
        if fmt is Fmt.RRR:
            rd, rs1, rs2 = args
            inst = Instruction(op, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2))
        elif fmt is Fmt.RRI:
            rd, rs1, imm = args
            inst = Instruction(op, rd=_reg(rd), rs1=_reg(rs1), imm=int(imm))
        elif fmt is Fmt.RI:
            rd, imm = args
            inst = Instruction(op, rd=_reg(rd), imm=int(imm))
        elif fmt is Fmt.BRANCH:
            rs1, rs2, target = args
            inst = Instruction(op, rs1=_reg(rs1), rs2=_reg(rs2), target=target)
        elif fmt is Fmt.JUMP:
            if op is Op.JAL:
                rd, target = args
                inst = Instruction(op, rd=_reg(rd), target=target)
            else:
                (target,) = args
                inst = Instruction(op, target=target)
        elif fmt is Fmt.JREG:
            (rs1,) = args
            inst = Instruction(op, rs1=_reg(rs1))
        elif fmt is Fmt.MEM_LOAD:
            rd, base = args[0], args[1]
            offset = args[2] if len(args) > 2 else 0
            inst = Instruction(op, rd=_reg(rd), rs1=_reg(base), imm=int(offset))
        elif fmt is Fmt.MEM_STORE:
            src, base = args[0], args[1]
            offset = args[2] if len(args) > 2 else 0
            inst = Instruction(op, rs2=_reg(src), rs1=_reg(base),
                               imm=int(offset))
        elif fmt is Fmt.AMO:
            rd, addr, operand = args
            inst = Instruction(op, rd=_reg(rd), rs1=_reg(addr),
                               rs2=_reg(operand))
        elif fmt is Fmt.SPL_LOAD:
            src, offset = args
            inst = Instruction(op, rs1=_reg(src), imm=int(offset))
        elif fmt is Fmt.SPL_LOADM:
            # spl_loadm(base, staging_offset, addr_offset=0):
            # loads mem[base + addr_offset] into staging[staging_offset].
            base, staging_offset = args[0], args[1]
            addr_offset = args[2] if len(args) > 2 else 0
            inst = Instruction(op, rs1=_reg(base), imm=int(addr_offset),
                               target=int(staging_offset))
        elif fmt is Fmt.SPL_INIT:
            (config,) = args
            inst = Instruction(op, imm=int(config))
        elif fmt is Fmt.SPL_RECV:
            (rd,) = args
            inst = Instruction(op, rd=_reg(rd))
        elif fmt is Fmt.SPL_STORE:
            base = args[0]
            offset = args[1] if len(args) > 1 else 0
            inst = Instruction(op, rs1=_reg(base), imm=int(offset))
        elif fmt is Fmt.NONE:
            if args:
                raise AssemblyError(f"{op.value} takes no operands")
            inst = Instruction(op)
        else:  # pragma: no cover - all formats covered above
            raise AssemblyError(f"unhandled format {fmt}")
        return self.emit(inst)

    def __getattr__(self, name: str):
        try:
            op = Op(name)
        except ValueError as exc:
            raise AttributeError(name) from exc

        def method(*args):
            return self._op(op, *args)

        method.__name__ = name
        return method

    # -- pseudo-instructions -------------------------------------------------

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction:
        """Alias for the OR opcode (``or`` is a Python keyword)."""
        return self._op(Op.OR, rd, rs1, rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction:
        """Alias for the AND opcode (``and`` is a Python keyword)."""
        return self._op(Op.AND, rd, rs1, rs2)

    def mov(self, rd: Reg, rs: Reg) -> Instruction:
        return self._op(Op.ADD, rd, rs, "r0")

    def neg(self, rd: Reg, rs: Reg) -> Instruction:
        return self._op(Op.SUB, rd, "r0", rs)

    def bgt(self, rs1: Reg, rs2: Reg, target: str) -> Instruction:
        """Branch if rs1 > rs2 (signed)."""
        return self._op(Op.BLT, rs2, rs1, target)

    def ble(self, rs1: Reg, rs2: Reg, target: str) -> Instruction:
        """Branch if rs1 <= rs2 (signed)."""
        return self._op(Op.BGE, rs2, rs1, target)

    def beqz(self, rs: Reg, target: str) -> Instruction:
        return self._op(Op.BEQ, rs, "r0", target)

    def bnez(self, rs: Reg, target: str) -> Instruction:
        return self._op(Op.BNE, rs, "r0", target)

    # -- structured-control helpers -------------------------------------------

    def for_range(self, counter: Reg, start_imm: int, bound: Reg,
                  body, step: int = 1) -> None:
        """Emit ``for (counter = start; counter < bound; counter += step)``.

        ``body`` is a callable invoked once to emit the loop body.  The loop
        condition is re-tested at the bottom (do-while shape preceded by a
        guard), matching how compilers emit counted loops.
        """
        top = self.fresh_label("for")
        done = self.fresh_label("endfor")
        self.li(counter, start_imm)
        self._op(Op.BGE, counter, bound, done)
        self.label(top)
        body()
        self._op(Op.ADDI, counter, counter, step)
        self._op(Op.BLT, counter, bound, top)
        self.label(done)

    def max_signed(self, rd: Reg, rs1: Reg, rs2: Reg, tmp: Reg) -> None:
        """rd = max(rs1, rs2) using a conditional branch (as compiled code)."""
        take = self.fresh_label("max")
        self.mov(tmp, rs1)
        self._op(Op.BGE, rs1, rs2, take)
        self.mov(tmp, rs2)
        self.label(take)
        self.mov(rd, tmp)

    def min_signed(self, rd: Reg, rs1: Reg, rs2: Reg, tmp: Reg) -> None:
        take = self.fresh_label("min")
        self.mov(tmp, rs1)
        self._op(Op.BGE, rs2, rs1, take)
        self.mov(tmp, rs2)
        self.label(take)
        self.mov(rd, tmp)
