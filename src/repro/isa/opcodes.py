"""Instruction set definition.

A small 32-bit RISC ISA, sufficient to express every kernel in Table III of
the paper, plus the SPL interface instructions of Section II-B:

* ``spl_load``  — place a register value into the core's SPL input staging
  entry at a byte alignment (Figure 3(a)).
* ``spl_loadm`` — load the word at ``(rs1)`` from the L1D straight into the
  staging entry (the "From C0 L1D" path of Figure 2(b)); the cache access
  overlaps with execution and ``spl_init`` issue waits for it.
* ``spl_loadv`` — like ``spl_loadm`` but loads a full 16-byte input beat
  (the row width) of four contiguous words in one instruction, matching
  the fabric's row-wide input bus.
* ``spl_init``  — seal the staging entry and issue it to the fabric with a
  configuration id (Figure 3(b)); barrier configurations mark arrival at a
  barrier instead (Figure 4).
* ``spl_recv``  — pop one word from the core's SPL output queue into a
  register (blocks while the queue is empty).
* ``spl_store`` — pop one word from the output queue and store it to memory
  (the paper's "SPL Store" writing the output queue to the store queue).

``amo_add``/``amo_swap`` provide the atomic read-modify-write needed by the
software-queue and software-barrier baselines, and ``fence`` is the memory
fence executed after barrier stores (Section II-B2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class FuClass(enum.Enum):
    """Functional unit classes used by the issue stage."""

    INT = "int"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    BRANCH = "branch"
    MEM = "mem"
    SPL = "spl"
    SYS = "sys"


class Fmt(enum.Enum):
    """Operand formats, used by the assembler for validation."""

    RRR = "rd, rs1, rs2"
    RRI = "rd, rs1, imm"
    RI = "rd, imm"
    BRANCH = "rs1, rs2, label"
    JUMP = "label"
    JREG = "rs1"
    MEM_LOAD = "rd, imm(rs1)"
    MEM_STORE = "rs2, imm(rs1)"
    AMO = "rd, rs2, (rs1)"
    SPL_LOAD = "rs1, offset"
    SPL_LOADM = "(rs1), offset"
    SPL_INIT = "config"
    SPL_RECV = "rd"
    SPL_STORE = "imm(rs1)"
    NONE = ""


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    fu: FuClass
    latency: int
    fmt: Fmt
    writes_rd: bool = True
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_spl: bool = False
    serialize: bool = False  # executes non-speculatively at ROB head


class Op(enum.Enum):
    """All opcodes.  The value is the mnemonic."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    LI = "li"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point (operates on f-registers)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSLT = "fslt"  # rd (int) = f[rs1] < f[rs2]
    # Memory
    LW = "lw"
    LB = "lb"
    LBU = "lbu"
    LH = "lh"
    LHU = "lhu"
    SW = "sw"
    SB = "sb"
    SH = "sh"
    FLW = "flw"
    FSW = "fsw"
    AMO_ADD = "amo_add"
    AMO_SWAP = "amo_swap"
    FENCE = "fence"
    # Control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    J = "j"
    JAL = "jal"
    JR = "jr"
    HALT = "halt"
    NOP = "nop"
    # SPL interface
    SPL_LOAD = "spl_load"
    SPL_LOADM = "spl_loadm"
    SPL_LOADV = "spl_loadv"
    SPL_INIT = "spl_init"
    SPL_RECV = "spl_recv"
    SPL_STORE = "spl_store"


_ALU = dict(fu=FuClass.INT, latency=1)

OP_TABLE: Dict[Op, OpInfo] = {}


def _register(op: Op, fu: FuClass, latency: int, fmt: Fmt, **flags) -> None:
    OP_TABLE[op] = OpInfo(name=op.value, fu=fu, latency=latency, fmt=fmt, **flags)


for _op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLL, Op.SRL,
            Op.SRA, Op.SLT, Op.SLTU):
    _register(_op, FuClass.INT, 1, Fmt.RRR)
for _op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI,
            Op.SLTI):
    _register(_op, FuClass.INT, 1, Fmt.RRI)
_register(Op.LI, FuClass.INT, 1, Fmt.RI)
_register(Op.MUL, FuClass.MUL, 3, Fmt.RRR)
_register(Op.DIV, FuClass.DIV, 12, Fmt.RRR)
_register(Op.REM, FuClass.DIV, 12, Fmt.RRR)

for _op, _lat in ((Op.FADD, 2), (Op.FSUB, 2), (Op.FMUL, 4), (Op.FDIV, 12)):
    _register(_op, FuClass.FP, _lat, Fmt.RRR)
_register(Op.FSLT, FuClass.FP, 2, Fmt.RRR)

for _op in (Op.LW, Op.LB, Op.LBU, Op.LH, Op.LHU, Op.FLW):
    _register(_op, FuClass.MEM, 1, Fmt.MEM_LOAD, is_load=True)
for _op in (Op.SW, Op.SB, Op.SH, Op.FSW):
    _register(_op, FuClass.MEM, 1, Fmt.MEM_STORE, writes_rd=False,
              is_store=True)
_register(Op.AMO_ADD, FuClass.MEM, 1, Fmt.AMO, is_load=True, is_store=True,
          serialize=True)
_register(Op.AMO_SWAP, FuClass.MEM, 1, Fmt.AMO, is_load=True, is_store=True,
          serialize=True)
_register(Op.FENCE, FuClass.SYS, 1, Fmt.NONE, writes_rd=False, serialize=True)

for _op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
    _register(_op, FuClass.BRANCH, 1, Fmt.BRANCH, writes_rd=False,
              is_branch=True)
_register(Op.J, FuClass.BRANCH, 1, Fmt.JUMP, writes_rd=False, is_branch=True)
_register(Op.JAL, FuClass.BRANCH, 1, Fmt.JUMP, is_branch=True)
_register(Op.JR, FuClass.BRANCH, 1, Fmt.JREG, writes_rd=False, is_branch=True)
_register(Op.HALT, FuClass.SYS, 1, Fmt.NONE, writes_rd=False, serialize=True)
_register(Op.NOP, FuClass.INT, 1, Fmt.NONE, writes_rd=False)

_register(Op.SPL_LOAD, FuClass.SPL, 1, Fmt.SPL_LOAD, writes_rd=False,
          is_spl=True, serialize=True)
_register(Op.SPL_LOADM, FuClass.SPL, 1, Fmt.SPL_LOADM, writes_rd=False,
          is_spl=True, serialize=True)
_register(Op.SPL_LOADV, FuClass.SPL, 1, Fmt.SPL_LOADM, writes_rd=False,
          is_spl=True, serialize=True)
_register(Op.SPL_INIT, FuClass.SPL, 1, Fmt.SPL_INIT, writes_rd=False,
          is_spl=True, serialize=True)
_register(Op.SPL_RECV, FuClass.SPL, 1, Fmt.SPL_RECV, is_spl=True,
          serialize=True)
_register(Op.SPL_STORE, FuClass.SPL, 1, Fmt.SPL_STORE, writes_rd=False,
          is_spl=True, serialize=True)


def info(op: Op) -> OpInfo:
    return OP_TABLE[op]
